(* The chaos harness: the resilience layer under seeded fault injection.

   Unit level — the retry policy, fault plans, the circuit breaker and
   the transport (including partial batch failure and budgets) are each
   pinned to their deterministic contracts.  Pipeline level — a full
   landscape run under an injected fault plan must come out byte-identical
   to the fault-free run once every transient is retried to success (at
   any worker count), and a plan harsh enough to exhaust the retry budget
   must degrade into classified dead letters that a later requeue under a
   healthy transport completes to the fault-free figures.

   Knobs mirror the CI matrix: CHAOS_SEED selects the fault plan seed
   (default 1) and DOMAINS the parallel worker count (default 4). *)

module Generate = Dataset.Generate
module Transport = Resilience.Transport
module Fault_plan = Resilience.Fault_plan
module Retry = Resilience.Retry
module Breaker = Resilience.Breaker
module Vclock = Resilience.Vclock

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
  | None -> 1

let domains_under_test =
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {1 Retry policy} *)

let test_retry_determinism () =
  let p = Retry.default in
  check_b "equal inputs, equal delay" true
    (Retry.delay p ~seed:7 ~attempt:1 = Retry.delay p ~seed:7 ~attempt:1);
  check_b "seed changes the jitter" true
    (Retry.delay p ~seed:7 ~attempt:1 <> Retry.delay p ~seed:8 ~attempt:1);
  for attempt = 1 to 30 do
    let d = Retry.delay p ~seed:chaos_seed ~attempt in
    check_b "delay never negative" true (d >= 0.0);
    check_b "delay capped (with jitter headroom)" true
      (d <= p.Retry.max_delay *. (1.0 +. p.Retry.jitter))
  done;
  check_b "backoff grows past the jitter band" true
    (Retry.delay p ~seed:3 ~attempt:4 > Retry.delay p ~seed:3 ~attempt:1)

(* {1 Fault plans} *)

let decisions spec ~salt n =
  let plan = Fault_plan.instantiate ~salt spec in
  let ds = List.init n (fun _ -> Fault_plan.next plan) in
  check_i "stream position advances" n (Fault_plan.calls_decided plan);
  ds

let test_fault_plan_determinism () =
  let spec = Fault_plan.spec ~seed:chaos_seed ~fault_rate:0.4 ~mean_latency:0.01 () in
  let fingerprint d =
    Printf.sprintf "%.9f %s" d.Fault_plan.d_latency
      (match d.Fault_plan.d_fault with
      | None -> "ok"
      | Some f -> f.Fault_plan.f_detail)
  in
  check_sl "same spec + salt: identical stream"
    (List.map fingerprint (decisions spec ~salt:11 40))
    (List.map fingerprint (decisions spec ~salt:11 40));
  check_b "different salts: different streams" true
    (List.map fingerprint (decisions spec ~salt:11 40)
    <> List.map fingerprint (decisions spec ~salt:12 40));
  List.iter
    (fun d ->
      check_b "latency drawn in [0.5x, 1.5x]" true
        (d.Fault_plan.d_latency >= 0.005 && d.Fault_plan.d_latency <= 0.015))
    (decisions spec ~salt:11 40);
  check_b "the pass-through plan injects nothing" true
    (List.for_all
       (fun d -> d.Fault_plan.d_fault = None && d.Fault_plan.d_latency = 0.0)
       (decisions Fault_plan.none ~salt:11 40))

let test_fault_plan_drop_window () =
  let spec = Fault_plan.spec ~seed:chaos_seed ~drop_windows:[ (2, 3) ] () in
  let faulty =
    List.map
      (fun d -> d.Fault_plan.d_fault <> None)
      (decisions spec ~salt:0 6)
  in
  Alcotest.(check (list bool))
    "exactly call indices 2..4 dropped"
    [ false; false; true; true; true; false ]
    faulty

(* {1 Circuit breaker} *)

let test_breaker_transitions () =
  let clock = Vclock.create () in
  let b =
    Breaker.create
      ~config:(Breaker.config ~failure_threshold:3 ~cooldown:2.0 ())
      ~clock ~endpoint:"archive" ()
  in
  let seen = ref [] in
  Breaker.on_transition b (fun tr ->
      seen :=
        (match tr with
        | Breaker.Opened { failures } -> Printf.sprintf "opened %d" failures
        | Breaker.Probing -> "probing"
        | Breaker.Recovered -> "recovered")
        :: !seen);
  check_s "starts closed" "closed" (Breaker.state_name (Breaker.state b));
  Breaker.record_failure b;
  Breaker.record_failure b;
  check_s "below threshold stays closed" "closed"
    (Breaker.state_name (Breaker.state b));
  Breaker.record_failure b;
  check_s "threshold trips the circuit" "open"
    (Breaker.state_name (Breaker.state b));
  let before = Vclock.now clock in
  Breaker.await_ready b;
  check_b "cooldown elapsed on the virtual clock" true
    (Vclock.now clock >= before +. 2.0);
  check_s "half-open admits a probe" "half-open"
    (Breaker.state_name (Breaker.state b));
  Breaker.record_failure b;
  check_s "failed probe re-opens" "open" (Breaker.state_name (Breaker.state b));
  Breaker.await_ready b;
  Breaker.record_success b;
  check_s "successful probe recovers" "closed"
    (Breaker.state_name (Breaker.state b));
  check_i "two trips counted" 2 (Breaker.open_count b);
  (* The failure streak is cumulative until a success clears it: the
     failed probe re-opens reporting the whole streak (4), not 1. *)
  check_sl "full transition history"
    [ "opened 3"; "probing"; "opened 4"; "probing"; "recovered" ]
    (List.rev !seen)

(* {1 Transport} *)

let rigged_chain () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:"\x00" () in
  for slot = 0 to 7 do
    Chain.set_storage_direct chain a (U256.of_int slot)
      (U256.of_int (100 + slot))
  done;
  (chain, a)

let storage_req a slot =
  ("eth_getStorageAt", [ Evm.Address.to_hex a; Printf.sprintf "0x%x" slot; "latest" ])

let test_transport_retries_to_success () =
  let chain, a = rigged_chain () in
  (* Deterministic plan: the first two attempts hit a drop window, the
     third dispatches. *)
  let cfg =
    Transport.config
      ~plan:(Fault_plan.spec ~seed:chaos_seed ~drop_windows:[ (0, 2) ] ())
      ()
  in
  let events = ref [] in
  let t = Transport.create ~config:cfg ~on_event:(fun e -> events := e :: !events) ~chain () in
  Chain.reset_api_call_count chain;
  let meth, params = storage_req a 0 in
  let direct = Chain_rpc.call chain ~meth ~params in
  Chain.reset_api_call_count chain;
  check_b "retried call returns the node's answer" true
    (Transport.call t ~meth ~params = direct);
  (* The accounting identity: two injected faults consumed zero API
     calls; the one dispatch consumed exactly one. *)
  check_i "injected faults never reach the node" 1 (Chain.api_call_count chain);
  let s = Transport.stats t in
  check_i "one dispatch" 1 s.Transport.dispatched;
  check_i "two faults observed" 2 s.Transport.faults_seen;
  check_i "two backoffs taken" 2 s.Transport.retries;
  check_i "nothing gave up" 0 s.Transport.gave_up;
  check_i "three attempts consumed" 3 (Transport.last_attempts t);
  check_b "backoff elapsed on the virtual clock only" true
    (s.Transport.virtual_elapsed > 0.0);
  let retries =
    List.rev
      (List.filter_map
         (function
           | Transport.Retry { attempt; delay; reason } ->
               check_b "retry delay positive" true (delay > 0.0);
               check_b "retry reason names the fault" true
                 (contains ~needle:"connection dropped" reason);
               Some attempt
           | _ -> None)
         !events)
  in
  Alcotest.(check (list int)) "retry events in attempt order" [ 1; 2 ] retries

let test_transport_gives_up () =
  let chain, a = rigged_chain () in
  let cfg =
    Transport.config
      ~plan:(Fault_plan.spec ~seed:chaos_seed ~drop_windows:[ (0, 100) ] ())
      ~policy:(Retry.policy ~max_attempts:3 ())
      ()
  in
  let t = Transport.create ~config:cfg ~chain () in
  let meth, params = storage_req a 0 in
  (match Transport.call t ~meth ~params with
  | Error (Chain_rpc.Transient _) -> ()
  | _ -> Alcotest.fail "expected an exhausted transient");
  let s = Transport.stats t in
  check_i "retry budget exhausted once" 1 s.Transport.gave_up;
  check_i "no dispatch escaped the drop window" 0 s.Transport.dispatched;
  check_i "every attempt consumed" 3 (Transport.last_attempts t)

let test_transport_breaker_cycle () =
  let chain, a = rigged_chain () in
  let cfg =
    Transport.config
      ~plan:(Fault_plan.spec ~seed:chaos_seed ~drop_windows:[ (0, 4) ] ())
      ~policy:(Retry.policy ~max_attempts:6 ())
      ~breaker:(Breaker.config ~failure_threshold:2 ~cooldown:1.0 ())
      ()
  in
  let opened = ref 0 and closed = ref 0 in
  let t =
    Transport.create ~config:cfg
      ~on_event:(function
        | Transport.Circuit_opened { endpoint; failures } ->
            check_s "opened on the archive endpoint" "archive" endpoint;
            check_b "opened with a positive streak" true (failures > 0);
            incr opened
        | Transport.Circuit_closed { endpoint } ->
            check_s "closed on the archive endpoint" "archive" endpoint;
            incr closed
        | Transport.Retry _ | Transport.Dispatched _ | Transport.Hedged _
        | Transport.Quorum_disagreement _ ->
            ())
      ~chain ()
  in
  let meth, params = storage_req a 0 in
  check_b "call eventually lands past the window" true
    (Result.is_ok (Transport.call t ~meth ~params));
  (* Window (0,4) fails attempts 0..3: streak of 2 trips, then two
     half-open probes fail and re-trip, then attempt 4 recovers. *)
  check_i "circuit tripped three times" 3 !opened;
  check_i "recovery observed" 1 !closed;
  check_i "stats agree with events" 3 (Transport.stats t).Transport.breaker_opens

let test_batch_partial_failure_recovers () =
  let chain, a = rigged_chain () in
  let requests = List.init 8 (storage_req a) in
  let direct =
    List.map (fun (meth, params) -> Chain_rpc.call chain ~meth ~params) requests
  in
  let cfg =
    Transport.config ~plan:(Fault_plan.spec ~seed:chaos_seed ~fault_rate:0.3 ()) ()
  in
  let t = Transport.create ~config:cfg ~chain () in
  check_b "moderate faults + full retry budget: batch equals direct calls" true
    (Transport.call_batch t requests = direct);
  check_b "the run did hit injected faults" true
    ((Transport.stats t).Transport.faults_seen > 0)

let test_batch_partial_failure_order () =
  let chain, a = rigged_chain () in
  let requests = List.init 8 (storage_req a) in
  let direct =
    List.map (fun (meth, params) -> Chain_rpc.call chain ~meth ~params) requests
  in
  (* No retries at all: whatever faults the plan deals stay as in-place
     [Transient] errors, and the served entries keep their slots. *)
  let cfg =
    Transport.config
      ~plan:(Fault_plan.spec ~seed:5 ~fault_rate:0.5 ())
      ~policy:(Retry.policy ~max_attempts:1 ())
      ()
  in
  let t = Transport.create ~config:cfg ~chain () in
  let responses = Transport.call_batch t requests in
  check_i "response list keeps request arity" (List.length requests)
    (List.length responses);
  let oks = ref 0 and errs = ref 0 in
  List.iteri
    (fun i r ->
      match r with
      | Ok _ ->
          incr oks;
          check_b
            (Printf.sprintf "entry %d matches the direct response" i)
            true
            (r = List.nth direct i)
      | Error (Chain_rpc.Transient _) -> incr errs
      | Error e ->
          Alcotest.failf "entry %d: unexpected permanent error %s" i
            (Chain_rpc.error_to_string e))
    responses;
  check_b "some entries served" true (!oks > 0);
  check_b "some entries failed in place" true (!errs > 0);
  check_i "exhausted entries counted as give-ups" !errs
    (Transport.stats t).Transport.gave_up

let test_permanent_errors_not_retried () =
  let chain, a = rigged_chain () in
  let t = Transport.create ~chain () in
  (match
     Transport.call t ~meth:"eth_getCode" ~params:[ Evm.Address.to_hex a; "0x0" ]
   with
  | Error (Chain_rpc.Unsupported_height m) ->
      check_s "unsupported-height names the method" "eth_getCode" m
  | _ -> Alcotest.fail "expected Unsupported_height");
  check_i "no retry spent on a permanent error" 0 (Transport.retries t);
  check_i "one attempt only" 1 (Transport.last_attempts t)

let test_call_budget_exhaustion () =
  let chain, a = rigged_chain () in
  let t = Transport.create ~config:(Transport.config ~call_budget:2 ()) ~chain () in
  let meth, params = storage_req a 0 in
  check_b "budgeted calls succeed" true
    (Result.is_ok (Transport.call t ~meth ~params)
    && Result.is_ok (Transport.call t ~meth ~params));
  (match Transport.call t ~meth ~params with
  | exception Transport.Budget_exhausted { scope; budget; spent } ->
      check_s "api-call scope" "api-calls" scope;
      check_i "declared budget" 2 budget;
      check_i "spent at the limit" 2 spent
  | _ -> Alcotest.fail "expected Budget_exhausted");
  let t' = Transport.create ~config:(Transport.config ~step_budget:100 ()) ~chain () in
  Transport.check_step_budget t' ~steps:100;
  match Transport.check_step_budget t' ~steps:101 with
  | exception Transport.Budget_exhausted { scope; _ } ->
      check_s "evm-step scope" "evm-steps" scope
  | () -> Alcotest.fail "expected step-budget exhaustion"

(* {1 Generic engine: dead-letter checkpoint round-trip and requeue} *)

let test_dead_letter_checkpoint_roundtrip () =
  let t =
    Engine.create ~batch_size:4 ~subject:string_of_int
      ~process:(fun _ n ->
        if n = 3 then
          Error
            (Engine.transient ~stage:Engine.Logic_resolve ~attempts:4
               "injected timeout outlived the retry budget")
        else if n = 5 then Error (Engine.permanent "malformed input")
        else Ok (n * 2))
      ()
  in
  Engine.submit t [ 1; 2; 3; 4; 5; 6 ];
  Engine.run t;
  Alcotest.(check (list int)) "survivors in order" [ 2; 4; 8; 12 ] (Engine.results t);
  let extra =
    Report.Json.Obj
      [
        ("note", Report.Json.String "opaque client payload");
        ("codes", Report.Json.List [ Report.Json.Int 1; Report.Json.Int 2 ]);
      ]
  in
  let item_to_json n = Report.Json.Int n in
  let res_to_json n = Report.Json.Int n in
  let item_of_json = function
    | Report.Json.Int n -> Ok n
    | _ -> Error "item: expected int"
  in
  let res_of_json = function
    | Report.Json.Int n -> Ok n
    | _ -> Error "res: expected int"
  in
  let ck = Engine.checkpoint ~item_to_json ~res_to_json ~extra t in
  let ck_text = Report.Json.to_string ~pretty:true ck in
  let reparsed =
    match Report.Json.parse ck_text with
    | Ok j -> j
    | Error e -> Alcotest.failf "checkpoint does not reparse: %s" e
  in
  let restored, extra' =
    match
      Engine.restore ~subject:string_of_int
        ~process:(fun _ n -> Ok (n * 2))
        ~item_of_json ~res_of_json reparsed
    with
    | Ok pair -> pair
    | Error e -> Alcotest.failf "restore failed: %s" e
  in
  check_s "extra payload survives the round-trip"
    (Report.Json.to_string extra)
    (Report.Json.to_string extra');
  check_s "re-checkpoint is byte-identical"
    (Report.Json.to_string ck)
    (Report.Json.to_string
       (Engine.checkpoint ~item_to_json ~res_to_json ~extra:extra' restored));
  (match Engine.skipped restored with
  | [ a; b ] ->
      check_i "transient item restored" 3 a.Engine.sk_item;
      check_s "transient subject" "3" a.Engine.sk_subject;
      check_b "transient class" true (a.Engine.sk_class = Engine.Transient);
      check_b "failing stage survives" true
        (a.Engine.sk_stage = Some Engine.Logic_resolve);
      check_i "attempt count survives" 4 a.Engine.sk_attempts;
      check_b "message survives" true
        (contains ~needle:"injected timeout" a.Engine.sk_message);
      check_i "permanent item restored" 5 b.Engine.sk_item;
      check_b "permanent class" true (b.Engine.sk_class = Engine.Permanent);
      check_b "permanent has no stage" true (b.Engine.sk_stage = None);
      check_i "permanent attempts default" 1 b.Engine.sk_attempts
  | l -> Alcotest.failf "expected 2 dead letters, got %d" (List.length l));
  check_i "default requeue moves only the recoverable entry" 1
    (Engine.requeue_transients restored);
  check_i "requeued entry pending" 1 (Engine.pending restored);
  Engine.run restored;
  Alcotest.(check (list int))
    "requeued item completes after the originals"
    [ 2; 4; 8; 12; 6 ] (Engine.results restored);
  check_i "permanent entry still dead" 1 (List.length (Engine.skipped restored));
  check_i "explicit class requeues the permanent entry" 1
    (Engine.requeue ~classes:[ Engine.Permanent ] restored);
  Engine.run restored;
  check_i "dead-letter list drained" 0 (List.length (Engine.skipped restored));
  Alcotest.(check (list int))
    "every item eventually completed"
    [ 2; 4; 8; 12; 6; 10 ] (Engine.results restored)

(* {1 Full-pipeline chaos} *)

let chaos_config = { Generate.quick_config with Generate.total = 240; seed = 31 }
let report_string r = Report.Json.to_string (Proxion.Serialize.report_to_json r)

let skeleton = function
  | Engine.Stage_started { stage; subject; _ } ->
      Some (Printf.sprintf "start %s %s" (Engine.stage_name stage) subject)
  | Engine.Stage_finished { stage; subject; _ } ->
      Some (Printf.sprintf "finish %s %s" (Engine.stage_name stage) subject)
  | Engine.Stage_errored { stage; subject; _ } ->
      Some (Printf.sprintf "error %s %s" (Engine.stage_name stage) subject)
  | Engine.Retry_attempted { subject; attempt; _ } ->
      Some (Printf.sprintf "retry %s %d" subject attempt)
  | Engine.Circuit_opened { endpoint; subject; _ } ->
      Some (Printf.sprintf "circuit-opened %s %s" endpoint subject)
  | Engine.Circuit_closed { endpoint; subject; _ } ->
      Some (Printf.sprintf "circuit-closed %s %s" endpoint subject)
  | Engine.Item_skipped { subject; _ } -> Some ("skip " ^ subject)
  | _ -> None

let run_landscape ?(gen = chaos_config) ?(config = Proxion.Pipeline.Config.default)
    ?(resilience = Transport.default_config) ~domains () =
  let land_ = Generate.generate gen in
  let config =
    Proxion.Pipeline.Config.(config |> with_batch_size 16 |> with_domains domains)
  in
  let t =
    Proxion.Analyzer.create ~config ~resilience ~chain:land_.Generate.chain
      ~source:land_.Generate.source_of ()
  in
  let events = ref [] in
  Proxion.Analyzer.subscribe t (fun ev ->
      match skeleton ev with Some s -> events := s :: !events | None -> ());
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  (t, List.rev !events)

let transient_plan =
  Transport.config
    ~plan:(Fault_plan.spec ~seed:chaos_seed ~fault_rate:0.08 ~mean_latency:0.002 ())
    ()

(* A fault plan mild enough that the default retry policy always clears
   it: the chaos run's report, checkpoint and dead-letter list must be
   byte-identical to the fault-free run, at any worker count. *)
(* The checkpoint embeds the declared run configuration (including the
   worker count), which legitimately differs between the sequential and
   parallel runs under comparison — null it out and compare the actual
   state: queue, results, dead letters, caches, counters. *)
let rec null_key key = function
  | Report.Json.Obj kvs ->
      Report.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = key then (k, Report.Json.Null) else (k, null_key key v))
           kvs)
  | Report.Json.List l -> Report.Json.List (List.map (null_key key) l)
  | j -> j

let checkpoint_state t =
  Report.Json.to_string (null_key "config" (Proxion.Analyzer.checkpoint t))

let test_chaos_transient_identity () =
  let reference, _ = run_landscape ~domains:1 () in
  let ref_report = report_string (Proxion.Analyzer.report reference) in
  let ref_ck = checkpoint_state reference in
  let faulty_seq, ev_seq = run_landscape ~resilience:transient_plan ~domains:1 () in
  let faulty_par, ev_par =
    run_landscape ~resilience:transient_plan ~domains:domains_under_test ()
  in
  let retry_count =
    List.length
      (List.filter (fun s -> String.length s >= 5 && String.sub s 0 5 = "retry") ev_seq)
  in
  check_b "the plan injected faults that were retried" true (retry_count > 0);
  List.iter
    (fun (t, label) ->
      check_i (label ^ ": no dead letters") 0
        (List.length (Proxion.Analyzer.skipped t));
      check_s (label ^ ": report byte-identical to fault-free") ref_report
        (report_string (Proxion.Analyzer.report t));
      check_s (label ^ ": checkpoint state byte-identical to fault-free")
        ref_ck (checkpoint_state t))
    [ (faulty_seq, "sequential chaos"); (faulty_par, "parallel chaos") ];
  check_sl
    (Printf.sprintf "chaos event order identical at %d domains"
       domains_under_test)
    ev_seq ev_par

(* A plan harsh enough to exhaust a 2-attempt retry budget: RPC-dependent
   contracts dead-letter as [Transient] in the resolve stage, everything
   else completes, and a checkpoint restored under a healthy transport
   requeues the casualties to exactly the fault-free figures.  Dedup is
   off: a casualty may have seeded the detection cache before dying, and
   this test compares against a run where it never existed. *)
let test_chaos_degrade_and_requeue () =
  let no_dedup = Proxion.Pipeline.Config.(default |> with_dedup false) in
  let reference, _ = run_landscape ~config:no_dedup ~domains:1 () in
  let ref_report = Proxion.Analyzer.report reference in
  let harsh =
    Transport.config
      ~plan:(Fault_plan.spec ~seed:chaos_seed ~fault_rate:0.45 ())
      ~policy:(Retry.policy ~max_attempts:2 ())
      ()
  in
  let degraded, _ = run_landscape ~config:no_dedup ~resilience:harsh ~domains:1 () in
  let dead = Proxion.Analyzer.skipped degraded in
  check_b "the harsh plan produced dead letters" true (dead <> []);
  List.iter
    (fun r ->
      check_b "classified transient" true (r.Engine.sk_class = Engine.Transient);
      check_b "attributed to the RPC-dependent stage" true
        (r.Engine.sk_stage = Some Engine.Logic_resolve);
      check_b "attempts recorded" true (r.Engine.sk_attempts >= 1))
    dead;
  (* "Next session": restore the checkpoint against a healthy transport
     and send the dead letters around again. *)
  let ck = Proxion.Analyzer.checkpoint degraded in
  let land_ = Generate.generate chaos_config in
  let resumed =
    match
      Proxion.Analyzer.restore ~chain:land_.Generate.chain
        ~source:land_.Generate.source_of ck
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "restore failed: %s" e
  in
  check_i "every dead letter requeued" (List.length dead)
    (Proxion.Analyzer.requeue_transients resumed);
  Proxion.Analyzer.run resumed;
  check_i "no dead letters after the healthy retry" 0
    (List.length (Proxion.Analyzer.skipped resumed));
  let final = Proxion.Analyzer.report resumed in
  check_s "stats recover to the fault-free figures"
    (Report.Json.to_string (Proxion.Serialize.stats_to_json ref_report.Proxion.Pipeline.stats))
    (Report.Json.to_string (Proxion.Serialize.stats_to_json final.Proxion.Pipeline.stats));
  (* Requeued contracts complete out of submission order; compare the
     per-contract reports address-sorted. *)
  let sorted_contracts r =
    List.sort compare
      (List.map
         (fun c -> Report.Json.to_string (Proxion.Serialize.contract_report_to_json c))
         r.Proxion.Pipeline.contracts)
  in
  check_sl "per-contract reports recover to the fault-free figures"
    (sorted_contracts ref_report) (sorted_contracts final)

(* Per-item step budgets: exceeding one dead-letters the contract as
   [Budget_exhausted] (not transient, not permanent), and the default
   requeue classes cover it once the budget is lifted. *)
let test_chaos_step_budget_degrade () =
  let gen = { Generate.quick_config with Generate.total = 60; seed = 31 } in
  let no_dedup = Proxion.Pipeline.Config.(default |> with_dedup false) in
  let starved = Transport.config ~step_budget:10 () in
  let t, _ = run_landscape ~gen ~config:no_dedup ~resilience:starved ~domains:1 () in
  let dead = Proxion.Analyzer.skipped t in
  (* The landscape deploys more contracts than [total] (logic targets
     ride along); the universe is whatever the starved run scheduled. *)
  let universe =
    Engine.processed_count (Proxion.Analyzer.engine t) + List.length dead
  in
  check_b "step starvation produced dead letters" true (dead <> []);
  List.iter
    (fun r ->
      check_b "classified budget-exhausted" true
        (r.Engine.sk_class = Engine.Budget_exhausted);
      check_b "attributed to a stage" true (r.Engine.sk_stage <> None);
      check_b "budget named in the message" true
        (contains ~needle:"evm-steps" r.Engine.sk_message))
    dead;
  let ck = Proxion.Analyzer.checkpoint t in
  let land_ = Generate.generate gen in
  let resumed =
    match
      Proxion.Analyzer.restore ~chain:land_.Generate.chain
        ~source:land_.Generate.source_of ck
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "restore failed: %s" e
  in
  check_i "budget-exhausted entries are in the default requeue classes"
    (List.length dead)
    (Proxion.Analyzer.requeue_transients resumed);
  Proxion.Analyzer.run resumed;
  check_i "all complete once the budget is lifted" 0
    (List.length (Proxion.Analyzer.skipped resumed));
  check_i "nothing left pending" 0 (Proxion.Analyzer.pending resumed);
  check_i "every contract reported" universe
    (List.length (Proxion.Analyzer.report resumed).Proxion.Pipeline.contracts)

let suite =
  [
    Alcotest.test_case "retry backoff is deterministic and capped" `Quick
      test_retry_determinism;
    Alcotest.test_case "fault plans are pure functions of seed and salt" `Quick
      test_fault_plan_determinism;
    Alcotest.test_case "drop windows fail exactly their call range" `Quick
      test_fault_plan_drop_window;
    Alcotest.test_case "breaker walks closed/open/half-open deterministically"
      `Quick test_breaker_transitions;
    Alcotest.test_case "transport retries transients to success" `Quick
      test_transport_retries_to_success;
    Alcotest.test_case "transport surfaces exhausted transients" `Quick
      test_transport_gives_up;
    Alcotest.test_case "transport breaker trips and recovers" `Quick
      test_transport_breaker_cycle;
    Alcotest.test_case "batch recovers partial failures to direct results"
      `Quick test_batch_partial_failure_recovers;
    Alcotest.test_case "batch preserves order under partial failure" `Quick
      test_batch_partial_failure_order;
    Alcotest.test_case "permanent errors are never retried" `Quick
      test_permanent_errors_not_retried;
    Alcotest.test_case "call and step budgets raise when exhausted" `Quick
      test_call_budget_exhaustion;
    Alcotest.test_case "dead letters survive checkpoint round-trips" `Quick
      test_dead_letter_checkpoint_roundtrip;
    Alcotest.test_case "chaos run is byte-identical once transients clear"
      `Quick test_chaos_transient_identity;
    Alcotest.test_case "harsh chaos degrades and requeues to fault-free figures"
      `Quick test_chaos_degrade_and_requeue;
    Alcotest.test_case "step starvation dead-letters as budget-exhausted" `Quick
      test_chaos_step_budget_degrade;
  ]
