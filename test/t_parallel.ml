(* Domain-parallel execution: the deterministic-merge contract.  A run
   fanned over N worker domains must be byte-identical to the sequential
   run — same report (including the API-call and EVM-step accounting),
   same event order, same checkpoint/resume behaviour — and a worker
   failure must drop only the failing item.

   The worker count under test defaults to 4 and can be overridden with
   the DOMAINS environment variable (the CI matrix runs 1 and 4). *)

module Generate = Dataset.Generate

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

let domains_under_test =
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

let small_config = { Generate.quick_config with Generate.total = 300; seed = 23 }
let report_string r = Report.Json.to_string (Proxion.Serialize.report_to_json r)

let analyze ~domains ?max_batches () =
  let land_ = Generate.generate small_config in
  let config =
    Proxion.Pipeline.Config.(
      default |> with_batch_size 16 |> with_domains domains)
  in
  let t =
    Proxion.Analyzer.create ~config ~chain:land_.Generate.chain
      ~source:land_.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run ?max_batches t;
  (t, land_)

(* The order-sensitive skeleton of an event: kind, stage, subject.
   Timings are wall-clock (never comparable) and worker ids legitimately
   differ between runs, so both are erased. *)
let event_skeleton = function
  | Engine.Run_started { pending; batch_size; _ } ->
      Some (Printf.sprintf "run-started %d %d" pending batch_size)
  | Engine.Batch_started { index; size } ->
      Some (Printf.sprintf "batch-started %d %d" index size)
  | Engine.Batch_finished { index; size; _ } ->
      Some (Printf.sprintf "batch-finished %d %d" index size)
  | Engine.Stage_started { stage; subject; _ } ->
      Some (Printf.sprintf "start %s %s" (Engine.stage_name stage) subject)
  | Engine.Stage_finished { stage; subject; _ } ->
      Some (Printf.sprintf "finish %s %s" (Engine.stage_name stage) subject)
  | Engine.Stage_errored { stage; subject; _ } ->
      Some (Printf.sprintf "error %s %s" (Engine.stage_name stage) subject)
  | Engine.Retry_attempted { subject; attempt; _ } ->
      Some (Printf.sprintf "retry %s %d" subject attempt)
  | Engine.Circuit_opened { endpoint; subject; _ } ->
      Some (Printf.sprintf "circuit-opened %s %s" endpoint subject)
  | Engine.Circuit_closed { endpoint; subject; _ } ->
      Some (Printf.sprintf "circuit-closed %s %s" endpoint subject)
  | Engine.Item_skipped { subject; _ } -> Some ("skip " ^ subject)
  | Engine.Run_finished { processed; skipped; _ } ->
      Some (Printf.sprintf "run-finished %d %d" processed skipped)

let test_parallel_report_identical () =
  let seq, _ = analyze ~domains:1 () in
  let skeletons t =
    let acc = ref [] in
    Proxion.Analyzer.subscribe t (fun ev ->
        match event_skeleton ev with
        | Some s -> acc := s :: !acc
        | None -> ());
    acc
  in
  let land_seq = Generate.generate small_config in
  let seq_ev_t =
    Proxion.Analyzer.create
      ~config:
        Proxion.Pipeline.Config.(
          default |> with_batch_size 16 |> with_domains 1)
      ~chain:land_seq.Generate.chain ~source:land_seq.Generate.source_of ()
  in
  let seq_events = skeletons seq_ev_t in
  Proxion.Analyzer.submit_all seq_ev_t;
  Proxion.Analyzer.run seq_ev_t;
  let land_par = Generate.generate small_config in
  let par =
    Proxion.Analyzer.create
      ~config:
        Proxion.Pipeline.Config.(
          default |> with_batch_size 16 |> with_domains domains_under_test)
      ~chain:land_par.Generate.chain ~source:land_par.Generate.source_of ()
  in
  let par_events = skeletons par in
  Proxion.Analyzer.submit_all par;
  Proxion.Analyzer.run par;
  check_i "parallel engine carries the worker count" domains_under_test
    (Engine.domains (Proxion.Analyzer.engine par));
  check_s
    (Printf.sprintf "report with %d domains is byte-identical to sequential"
       domains_under_test)
    (report_string (Proxion.Analyzer.report seq))
    (report_string (Proxion.Analyzer.report par));
  check_sl "event order is identical to sequential"
    (List.rev !seq_events) (List.rev !par_events)

let test_parallel_checkpoint_resume () =
  (* Reference: uninterrupted sequential run. *)
  let seq, _ = analyze ~domains:1 () in
  (* Parallel run interrupted mid-queue. *)
  let half, _ = analyze ~domains:domains_under_test ~max_batches:2 () in
  check_b "interrupted mid-queue" true (Proxion.Analyzer.pending half > 0);
  let ck_text =
    Report.Json.to_string ~pretty:true (Proxion.Analyzer.checkpoint half)
  in
  let ck =
    match Report.Json.parse ck_text with
    | Ok j -> j
    | Error e -> Alcotest.failf "checkpoint does not reparse: %s" e
  in
  (* "New process": fresh landscape, resume with the same worker count. *)
  let land_ = Generate.generate small_config in
  let resumed =
    match
      Proxion.Analyzer.restore ~domains:domains_under_test
        ~chain:land_.Generate.chain ~source:land_.Generate.source_of ck
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "restore failed: %s" e
  in
  Proxion.Analyzer.run resumed;
  check_i "queue drained" 0 (Proxion.Analyzer.pending resumed);
  check_s "resumed parallel report is byte-identical to sequential"
    (report_string (Proxion.Analyzer.report seq))
    (report_string (Proxion.Analyzer.report resumed))

let test_worker_failure_isolation () =
  let t =
    Engine.create ~batch_size:8 ~domains:domains_under_test
      ~subject:string_of_int
      ~process:(fun _ n ->
        if n = 5 then failwith "synthetic worker crash" else Ok (n * 10))
      ()
  in
  let skips = ref [] in
  Engine.subscribe t (fun ev ->
      match ev with
      | Engine.Item_skipped { subject; _ } -> skips := subject :: !skips
      | _ -> ());
  Engine.submit t [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Engine.run t;
  Alcotest.(check (list int))
    "every other item completes, in order"
    [ 10; 20; 30; 40; 60; 70; 80 ]
    (Engine.results t);
  check_i "exactly one item skipped" 1 (List.length (Engine.skipped t));
  let r = List.hd (Engine.skipped t) in
  let subject = r.Engine.sk_subject and message = r.Engine.sk_message in
  check_s "the failing item is the one skipped" "5" subject;
  check_b "worker crash classified permanent" true
    (r.Engine.sk_class = Engine.Permanent);
  check_b "exception text preserved" true
    (let needle = "synthetic worker crash" in
     let rec contains i =
       i + String.length needle <= String.length message
       && (String.sub message i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0);
  check_sl "Item_skipped event delivered" [ "5" ] !skips

let suite =
  [
    Alcotest.test_case "parallel report byte-identical to sequential" `Quick
      test_parallel_report_identical;
    Alcotest.test_case "parallel checkpoint resumes to identical figures"
      `Quick test_parallel_checkpoint_resume;
    Alcotest.test_case "worker failure skips only the failing item" `Quick
      test_worker_failure_isolation;
  ]
