(* Telemetry subsystem: the metrics registry (exposition validity, bucket
   determinism, shard absorption, percentile interpolation), the span
   tracer (Chrome trace JSON round-trip, coordinator-lane nesting), the
   structured log sink (JSONL well-formedness, level filtering) and the
   clock abstraction — plus the end-to-end contract: a fully
   instrumented chaos run snapshots byte-identically at every worker
   count once volatile families are suppressed. *)

module Generate = Dataset.Generate
module Json = Report.Json

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let checkf msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

(* --- clock ------------------------------------------------------------- *)

let test_clock () =
  check_b "real clock is not virtual" false (Obs.Clock.is_virtual Obs.Clock.real);
  let c = Obs.Clock.virtual_ ~start:10.0 () in
  check_b "virtual clock is virtual" true (Obs.Clock.is_virtual c);
  checkf "virtual reads the start value" 10.0 (Obs.Clock.now c);
  checkf "no auto step: reads are stable" 10.0 (Obs.Clock.now c);
  Obs.Clock.advance c 2.5;
  checkf "advance moves the clock" 12.5 (Obs.Clock.now c);
  Obs.Clock.advance c (-5.0);
  checkf "negative advance ignored" 12.5 (Obs.Clock.now c);
  let c = Obs.Clock.virtual_ ~auto_step:0.25 () in
  checkf "auto-step first read" 0.0 (Obs.Clock.now c);
  checkf "auto-step second read" 0.25 (Obs.Clock.now c);
  checkf "auto-step third read" 0.5 (Obs.Clock.now c);
  let real_now = Obs.Clock.now Obs.Clock.real in
  check_b "real clock reads a plausible epoch" true (real_now > 1.0e9)

(* --- metrics: recording, exposition, lint ------------------------------ *)

let sample_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m ~help:"Requests served" "test_requests_total" in
  let g = Obs.Metrics.gauge m ~help:"Queue depth" "test_queue_depth" in
  let h =
    Obs.Metrics.histogram m ~help:"Latency" ~buckets:[ 0.1; 1.0; 10.0 ]
      "test_latency_seconds"
  in
  Obs.Metrics.inc m c ~labels:[ ("method", "eth_getCode") ] ~by:2.0;
  Obs.Metrics.inc m c ~labels:[ ("method", "eth_getStorageAt") ];
  Obs.Metrics.set m g 7.0;
  List.iter (Obs.Metrics.observe m h) [ 0.05; 0.5; 5.0; 50.0 ];
  m

let test_exposition_lints () =
  let m = sample_registry () in
  let text = Obs.Metrics.to_prometheus m in
  (match Obs.Metrics.lint text with
  | Ok () -> ()
  | Error es -> Alcotest.fail ("lint rejected own exposition: " ^ String.concat "; " es));
  check_b "counter sample present" true
    (contains ~needle:"test_requests_total{method=\"eth_getCode\"} 2" text);
  check_b "gauge sample present" true
    (contains ~needle:"test_queue_depth 7" text);
  check_b "+Inf bucket present" true
    (contains ~needle:"test_latency_seconds_bucket{le=\"+Inf\"} 4" text);
  check_b "histogram count present" true
    (contains ~needle:"test_latency_seconds_count 4" text);
  check_b "help header present" true
    (contains ~needle:"# HELP test_requests_total Requests served" text);
  (* JSON snapshot parses back. *)
  (match Json.parse (Json.to_string (Obs.Metrics.to_json m)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("JSON snapshot does not parse: " ^ e));
  (* Registration sanity. *)
  check_b "find sees a registered family" true
    (Obs.Metrics.find m "test_requests_total" <> None);
  check_b "find misses unknown families" true
    (Obs.Metrics.find m "nope_total" = None);
  (match Obs.Metrics.counter m "test_queue_depth" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  match Obs.Metrics.counter m "bad name!" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid metric name accepted"

let test_lint_catches_breakage () =
  let expect_errors what text =
    match Obs.Metrics.lint text with
    | Ok () -> Alcotest.fail (what ^ ": lint accepted a broken exposition")
    | Error _ -> ()
  in
  expect_errors "orphan sample" "orphan_total 1\n";
  expect_errors "unparsable value" "# TYPE x counter\nx one\n";
  expect_errors "duplicate series"
    "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n";
  expect_errors "decreasing cumulative buckets"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"+Inf\"} 3\n\
     h_sum 2\n\
     h_count 3\n";
  expect_errors "missing +Inf bucket"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 2\nh_count 5\n";
  expect_errors "+Inf disagrees with count"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 2\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_sum 2\n\
     h_count 6\n"

let test_bucket_determinism () =
  (* The same multiset of observations, in different interleavings and
     through different shard topologies, must render byte-identically. *)
  let values = [ 0.05; 0.5; 0.5; 5.0; 50.0; 0.25 ] in
  let build order shards =
    let m = Obs.Metrics.create () in
    let h =
      Obs.Metrics.histogram m ~help:"Latency" ~buckets:[ 0.1; 1.0; 10.0 ]
        "d_latency_seconds"
    in
    let c = Obs.Metrics.counter m ~help:"Hits" "d_hits_total" in
    (match shards with
    | [] -> List.iter (fun v -> Obs.Metrics.observe m h v; Obs.Metrics.inc m c) order
    | shard_sizes ->
        let rec split vs = function
          | [] -> []
          | n :: rest ->
              let taken = List.filteri (fun i _ -> i < n) vs in
              let left = List.filteri (fun i _ -> i >= n) vs in
              taken :: split left rest
        in
        List.iter
          (fun chunk ->
            let sh = Obs.Metrics.shard m in
            List.iter
              (fun v ->
                Obs.Metrics.observe sh h v;
                Obs.Metrics.inc sh c)
              chunk;
            Obs.Metrics.absorb ~into:m sh)
          (split order shard_sizes));
    Obs.Metrics.to_prometheus m
  in
  let base = build values [] in
  check_s "reversed observation order" base (build (List.rev values) []);
  check_s "sharded 2+4" base (build values [ 2; 4 ]);
  check_s "sharded 3+3, reversed" base (build (List.rev values) [ 3; 3 ])

let test_shard_semantics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "s_total" in
  let g = Obs.Metrics.gauge m "s_gauge" in
  Obs.Metrics.inc m c ~by:3.0;
  Obs.Metrics.set m g 5.0;
  let sh = Obs.Metrics.shard m in
  Obs.Metrics.inc sh c ~by:4.0;
  Obs.Metrics.set sh g 9.0;
  checkf "shard records privately" 3.0
    (Option.get (Obs.Metrics.value m c));
  Obs.Metrics.absorb ~into:m sh;
  checkf "counters add on absorb" 7.0 (Option.get (Obs.Metrics.value m c));
  checkf "gauges overwrite on absorb" 9.0 (Option.get (Obs.Metrics.value m g));
  Obs.Metrics.absorb ~into:m sh;
  checkf "absorb empties the shard" 7.0 (Option.get (Obs.Metrics.value m c));
  check_b "untouched series read as None" true
    (Obs.Metrics.value sh c = None)

let test_summarize () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m ~buckets:[ 1.0; 2.0; 4.0 ] "p_hist" in
  for _ = 1 to 50 do Obs.Metrics.observe m h 0.5 done;
  for _ = 1 to 40 do Obs.Metrics.observe m h 1.5 done;
  for _ = 1 to 10 do Obs.Metrics.observe m h 3.0 done;
  match Obs.Metrics.summarize m h with
  | None -> Alcotest.fail "summarize returned None on a populated histogram"
  | Some s ->
      check_i "count" 100 s.Obs.Metrics.s_count;
      checkf "p50 interpolates to the first bound" 1.0 s.Obs.Metrics.s_p50;
      checkf "p90 interpolates to the second bound" 2.0 s.Obs.Metrics.s_p90;
      checkf "p99 interpolates inside the third bucket" 3.8 s.Obs.Metrics.s_p99;
      (* +Inf observations clamp to the largest finite bound. *)
      let m2 = Obs.Metrics.create () in
      let h2 = Obs.Metrics.histogram m2 ~buckets:[ 1.0 ] "p_hist2" in
      Obs.Metrics.observe m2 h2 100.0;
      let s2 = Option.get (Obs.Metrics.summarize m2 h2) in
      checkf "overflow clamps to the last finite bound" 1.0 s2.Obs.Metrics.s_p99;
      (* The JSON snapshot exposes cumulative bucket counts, like the
         text exposition — a consumer's quantile walk must find the
         rank inside a finite bucket, not fall off the +Inf end. *)
      let counts =
        match Obs.Metrics.to_json m with
        | Json.Obj top -> (
            match List.assoc "metrics" top with
            | Json.List [ Json.Obj fam ] -> (
                match List.assoc "series" fam with
                | Json.List [ Json.Obj series ] -> (
                    match List.assoc "buckets" series with
                    | Json.List bs ->
                        List.map
                          (fun b ->
                            match b with
                            | Json.Obj kvs -> (
                                match List.assoc "count" kvs with
                                | Json.Int n -> float_of_int n
                                | Json.Float f -> f
                                | _ -> nan)
                            | _ -> nan)
                          bs
                    | _ -> [])
                | _ -> [])
            | _ -> [])
        | _ -> []
      in
      check_b "JSON buckets are cumulative" true
        (counts = [ 50.0; 90.0; 100.0; 100.0 ])

(* --- the end-to-end contract: instrumented chaos runs ------------------ *)

let small_config = { Generate.quick_config with Generate.total = 220; seed = 31 }

let instrumented_run ?(fault_rate = 0.0) ?trace ~domains () =
  let land_ = Generate.generate small_config in
  let config =
    Proxion.Pipeline.Config.(
      default |> with_batch_size 16 |> with_domains domains)
  in
  let resilience =
    if fault_rate > 0.0 then
      Resilience.Transport.config
        ~plan:(Resilience.Fault_plan.spec ~seed:7 ~fault_rate ())
        ()
    else Resilience.Transport.default_config
  in
  let t =
    Proxion.Analyzer.create ~config ~resilience ~chain:land_.Generate.chain
      ~source:land_.Generate.source_of ()
  in
  let registry = Obs.Metrics.create () in
  Proxion.Analyzer.instrument ?trace registry t;
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  (registry, t)

let test_snapshot_identical_across_domains () =
  let expo registry =
    Obs.Metrics.to_prometheus ~suppress_volatile:true registry
  in
  let r1, _ = instrumented_run ~fault_rate:0.05 ~domains:1 () in
  let r4, _ = instrumented_run ~fault_rate:0.05 ~domains:4 () in
  let e1 = expo r1 and e4 = expo r4 in
  (match Obs.Metrics.lint e1 with
  | Ok () -> ()
  | Error es ->
      Alcotest.fail ("chaos exposition invalid: " ^ String.concat "; " es));
  check_b "chaos run recorded retries" true
    (contains ~needle:"proxion_retries_total" e1);
  check_b "per-method RPC attempts recorded" true
    (contains ~needle:"proxion_rpc_attempts_total{method=" e1);
  check_s "DOMAINS=4 snapshot is byte-identical to DOMAINS=1" e1 e4;
  (* JSON snapshots too, with the timestamp suppressed. *)
  let js r = Json.to_string (Obs.Metrics.to_json ~suppress_volatile:true r) in
  check_s "JSON snapshots byte-identical" (js r1) (js r4);
  (* The volatile families exist but are dropped from the diffable view. *)
  let full = Obs.Metrics.to_prometheus r1 in
  check_b "volatile stage timings exist unsuppressed" true
    (contains ~needle:"proxion_stage_seconds_bucket" full);
  check_b "volatile families suppressed in the diffable view" false
    (contains ~needle:"proxion_stage_seconds_bucket" e1)

(* --- span tracer ------------------------------------------------------- *)

let jget key = function
  | Json.Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let jstr key obj =
  match jget key obj with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string field %S" key)

let jnum key obj =
  match jget key obj with
  | Some (Json.Int i) -> float_of_int i
  | Some (Json.Float f) -> f
  | _ -> Alcotest.fail (Printf.sprintf "missing numeric field %S" key)

let test_trace_roundtrip_and_nesting () =
  let trace = Obs.Trace.create () in
  let _, _ = instrumented_run ~trace ~domains:1 () in
  check_b "trace recorded events" true (Obs.Trace.count trace > 0);
  (* Chrome trace JSON round-trips the repo's own parser. *)
  let text = Json.to_string (Obs.Trace.to_json trace) in
  let parsed =
    match Json.parse text with
    | Ok v -> v
    | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
  in
  check_s "display unit" "ms" (jstr "displayTimeUnit" parsed);
  let events =
    match jget "traceEvents" parsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  check_b "events survived serialization" true (List.length events > 0);
  List.iter
    (fun ev ->
      let ph = jstr "ph" ev in
      check_b "known phase" true (ph = "X" || ph = "i");
      ignore (jnum "ts" ev);
      ignore (jnum "pid" ev);
      ignore (jnum "tid" ev);
      if ph = "X" then check_b "complete spans have dur" true (jnum "dur" ev >= 0.0))
    events;
  (* Coordinator-lane nesting on tid 0: run > batch > item > stage. *)
  let spans cat =
    List.filter
      (fun ev ->
        jstr "ph" ev = "X" && jstr "cat" ev = cat && jnum "tid" ev = 0.0)
      events
  in
  let within ~outer ev =
    let eps = 1e-3 (* microseconds *) in
    List.exists
      (fun o ->
        jnum "ts" o -. eps <= jnum "ts" ev
        && jnum "ts" ev +. jnum "dur" ev <= jnum "ts" o +. jnum "dur" o +. eps)
      outer
  in
  let runs = spans "run" and batches = spans "batch" in
  let items = spans "item" and stages = spans "stage" in
  check_i "exactly one run span" 1 (List.length runs);
  check_b "several batch spans" true (List.length batches > 1);
  check_b "item spans present" true (List.length items > 0);
  check_b "stage spans present" true (List.length stages > 0);
  List.iter
    (fun b -> check_b "batch nests in run" true (within ~outer:runs b))
    batches;
  List.iter
    (fun i -> check_b "item nests in a batch" true (within ~outer:batches i))
    items;
  List.iter
    (fun s -> check_b "stage nests in an item" true (within ~outer:items s))
    stages;
  (* Batch spans are emitted in index order along the synthetic timeline. *)
  let batch_ts = List.map (jnum "ts") batches in
  check_b "batch timeline is non-decreasing" true
    (List.for_all2 ( <= ) batch_ts (List.tl batch_ts @ [ infinity ]))

let test_trace_with_span () =
  let clock = Obs.Clock.virtual_ ~auto_step:1.0 () in
  let tr = Obs.Trace.create ~clock () in
  let v = Obs.Trace.with_span tr "outer" (fun () -> 42) in
  check_i "with_span returns the thunk's value" 42 v;
  (match Obs.Trace.with_span tr "raises" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  check_i "both spans recorded" 2 (Obs.Trace.count tr);
  let parsed =
    match Json.parse (Json.to_string (Obs.Trace.to_json tr)) with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  match jget "traceEvents" parsed with
  | Some (Json.List [ a; b ]) ->
      check_s "first span name" "outer" (jstr "name" a);
      checkf "virtual-clock duration is exact" 1e6 (jnum "dur" a);
      check_s "second span name" "raises" (jstr "name" b)
  | _ -> Alcotest.fail "expected exactly two trace events"

(* --- span contexts and live spans -------------------------------------- *)

let hex16 s =
  String.length s = 16
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let test_trace_ctx_ids () =
  let g1 = Obs.Trace.gen ~seed:42 and g2 = Obs.Trace.gen ~seed:42 in
  let a = Obs.Trace.next_ctx g1 and b = Obs.Trace.next_ctx g2 in
  check_b "same seed, same first ctx" true (a = b);
  let a2 = Obs.Trace.next_ctx g1 and b2 = Obs.Trace.next_ctx g2 in
  check_b "streams advance in lockstep" true (a2 = b2);
  check_b "the stream moves" true (a <> a2);
  check_b "different seed, different ctx" true
    (a <> Obs.Trace.next_ctx (Obs.Trace.gen ~seed:43));
  (* Wire encoding round-trips and rejects everything else. *)
  let hex = Obs.Trace.id_to_hex a.Obs.Trace.trace_id in
  check_b "16 lowercase hex chars" true (hex16 hex);
  (match Obs.Trace.id_of_hex hex with
  | Some back -> check_b "hex round-trips" true (back = a.Obs.Trace.trace_id)
  | None -> Alcotest.fail "own hex encoding rejected");
  check_s "zero pads" "0000000000000001" (Obs.Trace.id_to_hex 1L);
  List.iter
    (fun bad ->
      check_b
        (Printf.sprintf "id_of_hex rejects %S" bad)
        true
        (Obs.Trace.id_of_hex bad = None))
    [
      "";
      "abc";
      String.uppercase_ascii hex;
      hex ^ "0";
      String.make 16 'x';
      String.make 16 ' ';
    ];
  (* Child derivation: deterministic, same trace, index-distinct. *)
  let c0 = Obs.Trace.child a ~index:0 in
  check_b "child is deterministic" true (c0 = Obs.Trace.child a ~index:0);
  check_b "child keeps the trace id" true
    (c0.Obs.Trace.trace_id = a.Obs.Trace.trace_id);
  check_b "indexes derive distinct span ids" true
    (c0.Obs.Trace.span_id <> (Obs.Trace.child a ~index:1).Obs.Trace.span_id);
  check_b "child differs from the parent span" true
    (c0.Obs.Trace.span_id <> a.Obs.Trace.span_id)

let test_live_span_tree () =
  let clock = Obs.Clock.virtual_ ~auto_step:1.0 () in
  let tr = Obs.Trace.create ~clock () in
  let g = Obs.Trace.gen ~seed:7 in
  let client = Obs.Trace.next_ctx g in
  let ctx = Obs.Trace.child client ~index:0 in
  let root =
    Obs.Trace.start_span ~cat:"request" ~parent_ctx:client ~ctx tr "query"
  in
  let rpc = Obs.Trace.start_span ~cat:"rpc" ~parent:root tr "eth_getCode" in
  check_b "child span joins the trace" true
    ((Obs.Trace.span_ctx rpc).Obs.Trace.trace_id = ctx.Obs.Trace.trace_id);
  check_b "child span gets its own span id" true
    ((Obs.Trace.span_ctx rpc).Obs.Trace.span_id <> ctx.Obs.Trace.span_id);
  Obs.Trace.finish_span rpc;
  Obs.Trace.finish_span root;
  let before = Obs.Trace.count tr in
  Obs.Trace.finish_span root;
  check_i "finish_span is idempotent" before (Obs.Trace.count tr);
  (* An unrelated trace in the same collector stays out of the tree. *)
  let stray = Obs.Trace.start_span ~ctx:(Obs.Trace.next_ctx g) tr "other" in
  Obs.Trace.finish_span stray;
  let tid_hex = Obs.Trace.id_to_hex ctx.Obs.Trace.trace_id in
  match Obs.Trace.span_tree_json tr ~trace_id:tid_hex with
  | Json.List [ rpc_ev; root_ev ] ->
      (* Arrival order: the leaf finished first. *)
      check_s "leaf name" "eth_getCode" (jstr "name" rpc_ev);
      check_s "root name" "query" (jstr "name" root_ev);
      let args ev =
        match jget "args" ev with
        | Some o -> o
        | None -> Alcotest.fail "span carries no args"
      in
      check_s "root carries the trace id" tid_hex (jstr "trace_id" (args root_ev));
      check_s "cross-process parent recorded"
        (Obs.Trace.id_to_hex client.Obs.Trace.span_id)
        (jstr "parent_span_id" (args root_ev));
      check_s "leaf's parent is the request span"
        (Obs.Trace.id_to_hex ctx.Obs.Trace.span_id)
        (jstr "parent_span_id" (args rpc_ev))
  | _ -> Alcotest.fail "expected exactly the two spans of this trace"

(* The worker-lane detail (RPC dispatches, EVM frames) rides real-time
   tracks, so its bytes vary run to run — but its *content* must not
   depend on the worker count: same names, cats and args at DOMAINS=1
   and DOMAINS=4, only the lane tids and timestamps differ.  The
   coordinator lane (tid 0) rides the synthetic timeline, so its event
   sequence is order-identical too (modulo wall-clock arg fields). *)
let test_span_tree_across_domains () =
  let events domains =
    let trace = Obs.Trace.create () in
    let _ = instrumented_run ~trace ~domains () in
    match Json.parse (Json.to_string (Obs.Trace.to_json trace)) with
    | Error e -> Alcotest.fail e
    | Ok parsed -> (
        match jget "traceEvents" parsed with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "traceEvents missing")
  in
  let e1 = events 1 and e4 = events 4 in
  let tid ev = int_of_float (jnum "tid" ev) in
  let args_key ~strip ev =
    match jget "args" ev with
    | Some (Json.Obj kvs) ->
        Json.to_string
          (Json.Obj (List.filter (fun (k, _) -> not (List.mem k strip)) kvs))
    | _ -> ""
  in
  let shape ~strip ev =
    Printf.sprintf "%s|%s|%s|%s" (jstr "name" ev) (jstr "cat" ev)
      (jstr "ph" ev) (args_key ~strip ev)
  in
  (* Coordinator lane: same event sequence, in order. *)
  let coord evs =
    List.filter (fun ev -> tid ev = 0) evs
    |> List.map (shape ~strip:[ "wall_elapsed"; "worker"; "delay"; "domains" ])
  in
  check_i "coordinator lanes have equal length" (List.length (coord e1))
    (List.length (coord e4));
  List.iter2 (check_s "coordinator event sequence identical") (coord e1)
    (coord e4);
  (* Worker lanes: same multiset, lanes aside. *)
  let lanes evs =
    List.filter (fun ev -> tid ev > 0) evs
    |> List.map (shape ~strip:[])
    |> List.sort compare
  in
  let l1 = lanes e1 and l4 = lanes e4 in
  check_b "worker-lane detail present" true (l1 <> []);
  check_i "worker lanes have equal volume" (List.length l1) (List.length l4);
  List.iter2 (check_s "worker-lane multiset identical") l1 l4

(* --- exemplars ---------------------------------------------------------- *)

let test_exemplars () =
  let m = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram m ~help:"Latency" ~buckets:[ 0.1; 1.0 ] "ex_seconds"
  in
  let id c = String.make 16 c in
  check_b "no exemplar before any observation" true
    (Obs.Metrics.exemplar m h = None);
  Obs.Metrics.observe ~exemplar:(id 'a') m h 0.2;
  check_b "first observation wins the empty slot" true
    (Obs.Metrics.exemplar m h = Some (id 'a', 0.2));
  Obs.Metrics.observe ~exemplar:(id 'b') m h 0.2;
  check_b "ties keep the earliest id" true
    (Obs.Metrics.exemplar m h = Some (id 'a', 0.2));
  Obs.Metrics.observe ~exemplar:(id 'c') m h 0.9;
  check_b "a strictly greater value replaces" true
    (Obs.Metrics.exemplar m h = Some (id 'c', 0.9));
  Obs.Metrics.observe m h 5.0;
  check_b "exemplar-less observations leave the slot" true
    (Obs.Metrics.exemplar m h = Some (id 'c', 0.9));
  (* Absorb keeps the max-valued exemplar; the destination wins ties. *)
  let sh = Obs.Metrics.shard m in
  Obs.Metrics.observe ~exemplar:(id 'd') sh h 2.0;
  Obs.Metrics.absorb ~into:m sh;
  check_b "absorb keeps the max" true
    (Obs.Metrics.exemplar m h = Some (id 'd', 2.0));
  let sh2 = Obs.Metrics.shard m in
  Obs.Metrics.observe ~exemplar:(id 'e') sh2 h 2.0;
  Obs.Metrics.absorb ~into:m sh2;
  check_b "destination wins absorb ties" true
    (Obs.Metrics.exemplar m h = Some (id 'd', 2.0));
  (* The exposition carries the EXEMPLAR comment and still lints. *)
  let text = Obs.Metrics.to_prometheus m in
  check_b "EXEMPLAR comment present" true
    (contains ~needle:("# EXEMPLAR ex_seconds " ^ id 'd') text);
  (match Obs.Metrics.lint text with
  | Ok () -> ()
  | Error es ->
      Alcotest.fail ("exemplar exposition rejected: " ^ String.concat "; " es));
  (* ...and the linter rejects broken exemplar lines. *)
  let expect_bad what line =
    match Obs.Metrics.lint (text ^ line ^ "\n") with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (what ^ ": lint accepted a broken exemplar")
  in
  expect_bad "short id" "# EXEMPLAR ex_seconds abc 2";
  expect_bad "uppercase id" ("# EXEMPLAR ex_seconds " ^ String.make 16 'A' ^ " 2");
  expect_bad "undeclared family" ("# EXEMPLAR nope_seconds " ^ id 'f' ^ " 2");
  expect_bad "unparsable value" ("# EXEMPLAR ex_seconds " ^ id 'f' ^ " zz");
  (* The JSON snapshot carries the exemplar object. *)
  match Obs.Metrics.to_json m with
  | Json.Obj _ as js ->
      check_b "JSON snapshot names the exemplar id" true
        (contains ~needle:(id 'd') (Json.to_string js))
  | _ -> Alcotest.fail "metrics JSON not an object"

(* --- flight recorder ---------------------------------------------------- *)

let test_flight_ring () =
  (match Obs.Flight.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  let run () =
    let clock = Obs.Clock.virtual_ ~start:5.0 ~auto_step:0.5 () in
    let f = Obs.Flight.create ~clock ~capacity:4 () in
    for i = 1 to 6 do
      Obs.Flight.record f "tick" ~fields:[ ("i", Json.Int i) ]
    done;
    f
  in
  let f = run () in
  check_i "capacity" 4 (Obs.Flight.capacity f);
  check_i "recorded counts evictions" 6 (Obs.Flight.recorded f);
  let js = Json.to_string (Obs.Flight.to_json f) in
  (match Json.parse js with
  | Error e -> Alcotest.fail ("flight JSON does not parse: " ^ e)
  | Ok parsed -> (
      checkf "capacity field" 4.0 (jnum "capacity" parsed);
      checkf "recorded field" 6.0 (jnum "recorded" parsed);
      match jget "events" parsed with
      | Some (Json.List evs) ->
          check_i "ring holds capacity events" 4 (List.length evs);
          let payloads =
            List.map
              (fun ev ->
                match jget "fields" ev with
                | Some fl -> int_of_float (jnum "i" fl)
                | None -> -1)
              evs
          in
          check_b "oldest evicted, order kept" true (payloads = [ 3; 4; 5; 6 ]);
          (* ts is read under the ring's lock: with the auto-stepping
             clock the retained events carry consecutive stamps. *)
          let ts = List.map (jnum "ts") evs in
          check_b "timestamps strictly increase" true
            (List.for_all2 ( < ) ts (List.tl ts @ [ infinity ]))
      | _ -> Alcotest.fail "events list missing"));
  (* limit keeps only the newest events. *)
  (match Obs.Flight.to_json ~limit:2 f with
  | Json.Obj kvs -> (
      match List.assoc_opt "events" kvs with
      | Some (Json.List evs) ->
          check_i "limit trims to the newest" 2 (List.length evs);
          let last =
            match List.rev evs with
            | ev :: _ -> int_of_float (jnum "i" (Option.get (jget "fields" ev)))
            | [] -> -1
          in
          check_i "newest survives the limit" 6 last
      | _ -> Alcotest.fail "limited events missing")
  | _ -> Alcotest.fail "flight JSON not an object");
  (* Deterministic under the virtual clock: a replay is byte-identical. *)
  check_s "replayed ring byte-identical" js
    (Json.to_string (Obs.Flight.to_json (run ())))

(* --- structured log sink ----------------------------------------------- *)

let with_log_lines ?(level = Obs.Log.Info) ?(json = false) f =
  let path = Filename.temp_file "proxion_obs" ".log" in
  let oc = open_out path in
  let clock = Obs.Clock.virtual_ ~auto_step:0.5 () in
  let log = Obs.Log.create ~clock ~level ~json oc in
  f log;
  close_out oc;
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  lines

let test_log_jsonl () =
  let lines =
    with_log_lines ~level:Obs.Log.Warn ~json:true (fun log ->
        check_b "debug disabled at warn" false (Obs.Log.enabled log Obs.Log.Debug);
        check_b "error enabled at warn" true (Obs.Log.enabled log Obs.Log.Error);
        Obs.Log.log log Obs.Log.Debug "dropped";
        Obs.Log.log log Obs.Log.Info "dropped too";
        Obs.Log.log log ~component:"engine" ~subject:"0xabc"
          ~fields:[ ("attempt", Json.Int 3) ]
          Obs.Log.Warn "slow item";
        Obs.Log.log log Obs.Log.Error "broken")
  in
  check_i "level filter keeps two of four records" 2 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok v -> v
        | Error e -> Alcotest.fail (Printf.sprintf "bad JSONL %S: %s" line e))
      lines
  in
  (match parsed with
  | [ warn; err ] ->
      check_s "first record level" "warn" (jstr "level" warn);
      check_s "component field" "engine" (jstr "component" warn);
      check_s "subject field" "0xabc" (jstr "subject" warn);
      check_s "message field" "slow item" (jstr "msg" warn);
      (match jget "fields" warn with
      | Some (Json.Obj [ ("attempt", Json.Int 3) ]) -> ()
      | _ -> Alcotest.fail "fields object mangled");
      checkf "virtual timestamp of the first emitted record" 0.0
        (jnum "ts" warn);
      check_s "second record level" "error" (jstr "level" err);
      checkf "auto-stepped timestamp" 0.5 (jnum "ts" err)
  | _ -> Alcotest.fail "expected two parsed records");
  (* Text mode: aligned single lines carrying the same information. *)
  let text_lines =
    with_log_lines (fun log ->
        Obs.Log.log log ~component:"engine" ~subject:"0xabc" Obs.Log.Info "hello";
        Obs.Log.log log Obs.Log.Debug "dropped")
  in
  check_i "text mode: one line" 1 (List.length text_lines);
  let line = List.hd text_lines in
  check_b "text line carries component" true (contains ~needle:"[engine]" line);
  check_b "text line carries subject" true (contains ~needle:"subject=0xabc" line);
  check_b "text line carries message" true (contains ~needle:"hello" line)

(* Records dropped below the sink's level are tallied, and the tally is
   flushed as a visible record before a mid-run level change moves the
   boundary — no silent loss across the transition. *)
let test_suppression_flush () =
  let lines =
    with_log_lines ~level:Obs.Log.Warn ~json:true (fun log ->
        Obs.Log.log log Obs.Log.Debug "dropped";
        Obs.Log.log log Obs.Log.Info "dropped too";
        check_b "guard reports debug disabled" false
          (Obs.Log.enabled log Obs.Log.Debug);
        Obs.Log.note_suppressed log;
        check_i "filtered calls and explicit notes both count" 3
          (Obs.Log.suppressed log);
        Obs.Log.set_level log Obs.Log.Debug;
        check_i "flush resets the tally" 0 (Obs.Log.suppressed log);
        Obs.Log.set_level log Obs.Log.Debug;
        (* no-op: unchanged level *)
        Obs.Log.log log Obs.Log.Debug "now visible")
  in
  check_i "flush record plus the now-visible record" 2 (List.length lines);
  match List.map (fun l -> Result.get_ok (Json.parse l)) lines with
  | [ flush; visible ] ->
      check_s "flush message" "suppressed records" (jstr "msg" flush);
      check_s "flush component" "log" (jstr "component" flush);
      (match jget "fields" flush with
      | Some f ->
          checkf "suppressed count" 3.0 (jnum "suppressed" f);
          check_s "old threshold recorded" "warn" (jstr "below" f)
      | None -> Alcotest.fail "flush record carries no fields");
      check_s "debug records flow after the change" "now visible"
        (jstr "msg" visible)
  | _ -> Alcotest.fail "expected two parsed records"

let test_level_parsing () =
  List.iter
    (fun (s, expect) ->
      match Obs.Log.level_of_string s with
      | Ok l -> check_s ("parse " ^ s) expect (Obs.Log.level_to_string l)
      | Error e -> Alcotest.fail e)
    [
      ("debug", "debug");
      ("Info", "info");
      ("WARNING", "warn");
      ("warn", "warn");
      ("error", "error");
    ];
  match Obs.Log.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus level accepted"

let suite =
  [
    Alcotest.test_case "clock: real and virtual" `Quick test_clock;
    Alcotest.test_case "metrics: exposition is valid and lints" `Quick
      test_exposition_lints;
    Alcotest.test_case "metrics: lint catches broken expositions" `Quick
      test_lint_catches_breakage;
    Alcotest.test_case "metrics: histogram rendering is order-independent"
      `Quick test_bucket_determinism;
    Alcotest.test_case "metrics: shard absorb semantics" `Quick
      test_shard_semantics;
    Alcotest.test_case "metrics: percentile interpolation" `Quick
      test_summarize;
    Alcotest.test_case "instrumented chaos snapshot identical across domains"
      `Slow test_snapshot_identical_across_domains;
    Alcotest.test_case "trace: JSON round-trip and span nesting" `Slow
      test_trace_roundtrip_and_nesting;
    Alcotest.test_case "trace: with_span on a virtual clock" `Quick
      test_trace_with_span;
    Alcotest.test_case "trace: span contexts and hex ids" `Quick
      test_trace_ctx_ids;
    Alcotest.test_case "trace: live span trees join on trace_id" `Quick
      test_live_span_tree;
    Alcotest.test_case "trace: span tree identical across domains" `Slow
      test_span_tree_across_domains;
    Alcotest.test_case "metrics: max-latency exemplars" `Quick test_exemplars;
    Alcotest.test_case "flight: bounded ring is deterministic" `Quick
      test_flight_ring;
    Alcotest.test_case "log: JSONL well-formedness and level filtering" `Quick
      test_log_jsonl;
    Alcotest.test_case "log: suppression tally flushes on level change" `Quick
      test_suppression_flush;
    Alcotest.test_case "log: level parsing" `Quick test_level_parsing;
  ]
