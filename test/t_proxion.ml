open Proxion
module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen
module Ast = Minisol.Ast

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u
let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"
let mallory = Evm.Address.of_hex "0x0000000000000000000000000000000000ba0bab"

let deploy chain ?(from = alice) c =
  match Chain.deploy chain ~from ~init_code:(Codegen.init_code c) () with
  | Ok addr -> addr
  | Error e -> Alcotest.failf "deploy %s failed: %s" c.Ast.c_name e

let call_fn chain ~from ~to_ ?(args = []) signature =
  Chain.call chain ~from ~to_ ~input:(Evm.Abi.encode_call ~signature args) ()

(* ------------------------------------------------------------------ *)
(* Selector extraction                                                 *)
(* ------------------------------------------------------------------ *)

let test_dispatcher_extraction () =
  let code = Codegen.runtime (Patterns.counter_logic ()) in
  let found = Selector_extract.dispatcher_selectors code in
  let expected = Ast.selectors (Patterns.counter_logic ()) in
  check_i "finds all three" 3 (List.length found);
  List.iter
    (fun sel -> check_b ("found " ^ Hexutil.to_hex sel) true (List.mem sel found))
    expected

let test_naive_push4_false_positives () =
  (* The library caller embeds the selector of add(uint256,uint256) via
     PUSH4 outside any dispatcher: naive harvesting reports it, the
     dispatcher extractor must not. *)
  let lib = Evm.Address.of_hex "0x00000000000000000000000000000000000005af" in
  let code = Codegen.runtime (Patterns.library_caller ~lib) in
  let embedded = Keccak.selector "add(uint256,uint256)" in
  check_b "naive sees the embedded constant" true
    (List.mem embedded (Selector_extract.naive_push4 code));
  check_b "dispatcher extraction rejects it" false
    (List.mem embedded (Selector_extract.dispatcher_selectors code));
  (* And the real functions are still found. *)
  check_b "real function found" true
    (List.mem
       (Keccak.selector "addChecked(uint256,uint256)")
       (Selector_extract.dispatcher_selectors code))

let test_probe_avoids_all_push4 () =
  let code = Codegen.runtime (Patterns.counter_logic ()) in
  let probe = Proxy_detect.probe_calldata ~code ~seed:7 in
  check_i "selector+arg" 36 (String.length probe);
  check_b "probe avoids every PUSH4" false
    (List.mem (Hexutil.take 4 probe) (Selector_extract.naive_push4 code))

(* ------------------------------------------------------------------ *)
(* Proxy detection                                                     *)
(* ------------------------------------------------------------------ *)

let test_detect_minimal_proxy () =
  let logic = Evm.Address.of_hex "0x1111111111111111111111111111111111111111" in
  let d = Proxy_detect.detect_code (Patterns.eip1167_runtime logic) in
  (match d.Proxy_detect.verdict with
  | Proxy_detect.Proxy { target; source = Proxy_detect.Hardcoded } ->
      check_s "target" (Evm.Address.to_hex logic) (Evm.Address.to_hex target)
  | _ -> Alcotest.fail "expected hardcoded proxy");
  check_b "is_proxy" true (Proxy_detect.is_proxy d)

let test_detect_slot_proxy_on_chain () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain (Patterns.slot_var_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  let host = Chain.host_at_head chain in
  let d = Proxy_detect.detect ~host proxy in
  match d.Proxy_detect.verdict with
  | Proxy_detect.Proxy { target; source = Proxy_detect.Storage_slot slot } ->
      check_s "target is logic" (Evm.Address.to_hex logic) (Evm.Address.to_hex target);
      check_u "slot 1" U256.one slot
  | _ -> Alcotest.fail "expected slot-based proxy"

let test_detect_eip1967_slot () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain (Patterns.eip1967_proxy ()) in
  Chain.set_storage_direct chain proxy Patterns.eip1967_implementation_slot
    (Evm.Address.to_u256 logic);
  let host = Chain.host_at_head chain in
  let d = Proxy_detect.detect ~host proxy in
  match d.Proxy_detect.verdict with
  | Proxy_detect.Proxy { source = Proxy_detect.Storage_slot slot; _ } ->
      check_u "eip1967 slot" Patterns.eip1967_implementation_slot slot
  | _ -> Alcotest.fail "expected eip1967 slot proxy"

let test_detect_non_proxy_no_delegatecall () =
  let d = Proxy_detect.detect_code (Codegen.runtime (Patterns.counter_logic ())) in
  check_b "prefilter rejects" true
    (d.Proxy_detect.verdict = Proxy_detect.Not_proxy_no_delegatecall)

let test_detect_library_caller_excluded () =
  (* DELEGATECALL present, but only inside a function body — the probe's
     unknown selector never reaches it, so this is NOT a proxy (§2.2). *)
  let lib = Evm.Address.of_hex "0x00000000000000000000000000000000000005af" in
  let d = Proxy_detect.detect_code (Codegen.runtime (Patterns.library_caller ~lib)) in
  check_b "library caller excluded" true
    (d.Proxy_detect.verdict = Proxy_detect.Not_proxy_no_forward)

let test_detect_diamond_missed () =
  (* The diamond's facet gate rejects the random probe: ProxioN misses it,
     exactly as §8.1 concedes. *)
  let d = Proxy_detect.detect_code (Codegen.runtime (Patterns.diamond_proxy ())) in
  check_b "diamond missed" true
    (d.Proxy_detect.verdict = Proxy_detect.Not_proxy_no_forward)

let test_detect_hidden_contract () =
  (* A slot proxy with EMPTY storage and no transactions: the hidden case
     that defeats source-based and history-based tools.  Emulation still
     observes the forwarding delegatecall (to the zero address). *)
  let d = Proxy_detect.detect_code (Codegen.runtime (Patterns.slot_var_proxy ())) in
  match d.Proxy_detect.verdict with
  | Proxy_detect.Proxy { target; source = Proxy_detect.Storage_slot slot } ->
      check_b "zero target" true (Evm.Address.equal target Evm.Address.zero);
      check_u "slot 1" U256.one slot
  | _ -> Alcotest.fail "hidden slot proxy must still be detected"

let test_detection_does_not_mutate_state () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.audius_logic ()) in
  let proxy = deploy chain (Patterns.audius_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  let host = Chain.host_at_head chain in
  let before = host.Evm.Host.get_storage proxy U256.zero in
  let _ = Proxy_detect.detect ~host proxy in
  check_u "storage unchanged by probe" before
    (host.Evm.Host.get_storage proxy U256.zero)

(* EIP-1967 beacon proxy: the logic address is computed via a nested
   STATICCALL, so detection must report a Computed source, and resolution
   falls back to the probed target. *)
let test_detect_beacon_proxy () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let beacon = deploy chain ~from:alice (Patterns.beacon ()) in
  let r =
    call_fn chain ~from:alice ~to_:beacon "upgradeTo(address)"
      ~args:[ Evm.Abi.Addr logic ]
  in
  check_b "beacon configured" true (r.Chain.tx_status = Evm.Interp.Returned);
  let proxy = deploy chain (Patterns.beacon_proxy ()) in
  Chain.set_storage_direct chain proxy Patterns.eip1967_beacon_slot
    (Evm.Address.to_u256 beacon);
  (* The beacon proxy forwards through its nested staticcall. *)
  let rec_ = call_fn chain ~from:mallory ~to_:proxy "increment()" in
  check_b "forwarding works" true (rec_.Chain.tx_status = Evm.Interp.Returned);
  let host = Chain.host_at_head chain in
  let d = Proxy_detect.detect ~host proxy in
  (match d.Proxy_detect.verdict with
  | Proxy_detect.Proxy { target; source = Proxy_detect.Computed } ->
      check_s "probed target is the logic" (Evm.Address.to_hex logic)
        (Evm.Address.to_hex target)
  | Proxy_detect.Proxy { source = _; _ } ->
      Alcotest.fail "expected Computed source for beacon"
  | _ -> Alcotest.fail "beacon proxy not detected");
  (* Resolution uses the probed target. *)
  let res = Logic_resolve.resolve ~probed:logic chain proxy Proxy_detect.Computed in
  Alcotest.(check (list string))
    "resolved to probed target"
    [ Evm.Address.to_hex logic ]
    (List.map Evm.Address.to_hex res.Logic_resolve.historical);
  (* And the pipeline produces a pair for it. *)
  let report =
    Pipeline.analyze ~chain ~source:(fun _ -> None)
      ~addresses:[ proxy; logic; beacon ] ()
  in
  let pr =
    List.find
      (fun r -> Evm.Address.equal r.Pipeline.r_address proxy)
      report.Pipeline.contracts
  in
  check_i "one pair via probed target" 1 (List.length pr.Pipeline.r_pairs)

(* The 8.2 extension: historical-selector probing recovers diamonds. *)
let test_diamond_probe_extension () =
  let chain = Chain.create () in
  let facet = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain ~from:alice (Patterns.diamond_proxy ()) in
  let sel_word = U256.of_bytes_be (Keccak.selector "increment()") in
  let r =
    call_fn chain ~from:alice ~to_:proxy "setFacet(uint256,address)"
      ~args:[ Evm.Abi.Uint sel_word; Evm.Abi.Addr facet ]
  in
  check_b "facet registered" true (r.Chain.tx_status = Evm.Interp.Returned);
  (* A user exercises the registered selector: this is the history the
     extension harvests. *)
  let r = call_fn chain ~from:mallory ~to_:proxy "increment()" in
  check_b "facet call works" true (r.Chain.tx_status = Evm.Interp.Returned);
  (* Base probe still misses it... *)
  let host = Chain.host_at_head chain in
  check_b "base probe misses" false
    (Proxy_detect.is_proxy (Proxy_detect.detect ~host proxy));
  (* ...but the history-assisted probe finds it. *)
  let d = Diamond_probe.detect chain proxy in
  (match d.Proxy_detect.verdict with
  | Proxy_detect.Proxy { target; _ } ->
      check_s "facet recovered" (Evm.Address.to_hex facet) (Evm.Address.to_hex target)
  | _ -> Alcotest.fail "diamond extension should detect the proxy");
  (* Hidden diamonds (no transactions) remain undetectable. *)
  let hidden = deploy chain ~from:alice (Patterns.diamond_proxy ()) in
  check_b "hidden diamond still missed" false
    (Proxy_detect.is_proxy (Diamond_probe.detect chain hidden))

let test_diamond_probe_no_false_positive () =
  let chain = Chain.create () in
  let counter = deploy chain (Patterns.counter_logic ()) in
  let r = call_fn chain ~from:alice ~to_:counter "increment()" in
  check_b "tx ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  check_b "plain contract with history not flagged" false
    (Proxy_detect.is_proxy (Diamond_probe.detect chain counter));
  (* A library caller with history is still excluded. *)
  let user = deploy chain (Patterns.library_caller ~lib:counter) in
  let r =
    call_fn chain ~from:alice ~to_:user "addChecked(uint256,uint256)"
      ~args:[ Evm.Abi.Uint U256.one; Evm.Abi.Uint U256.one ]
  in
  check_b "lib tx ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  check_b "library caller still excluded" false
    (Proxy_detect.is_proxy (Diamond_probe.detect chain user))

let test_pipeline_diamond_extension () =
  let chain = Chain.create () in
  let facet = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain ~from:alice (Patterns.diamond_proxy ()) in
  let sel_word = U256.of_bytes_be (Keccak.selector "increment()") in
  ignore
    (call_fn chain ~from:alice ~to_:proxy "setFacet(uint256,address)"
       ~args:[ Evm.Abi.Uint sel_word; Evm.Abi.Addr facet ]);
  ignore (call_fn chain ~from:mallory ~to_:proxy "increment()");
  let base = Pipeline.analyze ~chain ~source:(fun _ -> None) () in
  let ext =
    Pipeline.analyze
      ~config:{ Pipeline.Config.default with diamond_extension = true }
      ~chain ~source:(fun _ -> None) ()
  in
  let is_proxy report =
    List.exists
      (fun r ->
        Evm.Address.equal r.Pipeline.r_address proxy && Pipeline.is_proxy_report r)
      report.Pipeline.contracts
  in
  check_b "baseline pipeline misses the diamond" false (is_proxy base);
  check_b "extended pipeline recovers it" true (is_proxy ext)

(* ------------------------------------------------------------------ *)
(* Logic resolution (Algorithm 1)                                      *)
(* ------------------------------------------------------------------ *)

let test_algorithm1_recovers_history () =
  let chain = Chain.create () in
  let proxy = deploy chain (Patterns.slot_var_proxy ()) in
  let slot = U256.one in
  let logic1 = Evm.Address.of_hex "0x1000000000000000000000000000000000000001" in
  let logic2 = Evm.Address.of_hex "0x2000000000000000000000000000000000000002" in
  let logic3 = Evm.Address.of_hex "0x3000000000000000000000000000000000000003" in
  Chain.advance_blocks chain 100;
  Chain.set_storage_direct chain proxy slot (Evm.Address.to_u256 logic1);
  Chain.advance_blocks chain 500;
  Chain.set_storage_direct chain proxy slot (Evm.Address.to_u256 logic2);
  Chain.advance_blocks chain 2000;
  Chain.set_storage_direct chain proxy slot (Evm.Address.to_u256 logic3);
  Chain.advance_blocks chain 300;
  let r = Logic_resolve.resolve_slot chain proxy ~slot in
  Alcotest.(check (list string))
    "all three logics in order"
    (List.map Evm.Address.to_hex [ logic1; logic2; logic3 ])
    (List.map Evm.Address.to_hex r.Logic_resolve.historical);
  (match r.Logic_resolve.current with
  | Some c -> check_s "current" (Evm.Address.to_hex logic3) (Evm.Address.to_hex c)
  | None -> Alcotest.fail "current missing");
  check_i "upgrade count" 2 r.Logic_resolve.upgrade_count;
  (* The binary search must beat the naive scan by orders of magnitude. *)
  check_b
    (Printf.sprintf "api calls %d << height %d" r.Logic_resolve.api_calls
       (Chain.height chain))
    true
    (r.Logic_resolve.api_calls < Chain.height chain / 10)

let test_algorithm1_static_slot () =
  let chain = Chain.create () in
  let proxy = deploy chain (Patterns.slot_var_proxy ()) in
  Chain.advance_blocks chain 1000;
  let r = Logic_resolve.resolve_slot chain proxy ~slot:(U256.of_int 9) in
  check_i "no history" 0 (List.length r.Logic_resolve.historical);
  check_b "few api calls for unchanged slot" true (r.Logic_resolve.api_calls <= 4)

let test_resolve_minimal () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy_addr =
    Chain.install_contract chain ~runtime:(Patterns.eip1167_runtime logic) ()
  in
  let r = Logic_resolve.resolve chain proxy_addr Proxy_detect.Hardcoded in
  Alcotest.(check (list string))
    "single fixed logic"
    [ Evm.Address.to_hex logic ]
    (List.map Evm.Address.to_hex r.Logic_resolve.historical);
  check_i "no api calls" 0 r.Logic_resolve.api_calls

(* ------------------------------------------------------------------ *)
(* Standard classification                                             *)
(* ------------------------------------------------------------------ *)

let test_standard_classification () =
  let logic = Evm.Address.of_hex "0x1111111111111111111111111111111111111111" in
  check_s "eip1167" "EIP-1167"
    (Standard_classify.to_string
       (Standard_classify.classify
          ~code:(Patterns.eip1167_runtime logic)
          Proxy_detect.Hardcoded));
  check_s "eip1822" "EIP-1822"
    (Standard_classify.to_string
       (Standard_classify.classify ~code:""
          (Proxy_detect.Storage_slot Patterns.eip1822_proxiable_slot)));
  check_s "eip1967" "EIP-1967"
    (Standard_classify.to_string
       (Standard_classify.classify ~code:""
          (Proxy_detect.Storage_slot Patterns.eip1967_implementation_slot)));
  check_s "others" "Others"
    (Standard_classify.to_string
       (Standard_classify.classify ~code:"" (Proxy_detect.Storage_slot U256.one)))

(* ------------------------------------------------------------------ *)
(* Function collisions                                                 *)
(* ------------------------------------------------------------------ *)

let test_func_collision_source_source () =
  let collisions =
    Func_collision.detect
      ~proxy:(Func_collision.Source (Patterns.honeypot_proxy ()))
      ~logic:(Func_collision.Source (Patterns.honeypot_logic ()))
  in
  match collisions with
  | [ c ] ->
      check_s "selector" "0xdf4a3106" (Hexutil.to_hex c.Func_collision.selector);
      check_b "proxy sig" true
        (c.Func_collision.proxy_signature = Some "impl_LUsXCWD2AKCc()");
      check_b "logic sig" true
        (c.Func_collision.logic_signature = Some "free_ether_withdrawal()")
  | l -> Alcotest.failf "expected 1 collision, got %d" (List.length l)

let test_func_collision_bytecode_bytecode () =
  (* The paper's novel capability: same collision from bare bytecode. *)
  let collisions =
    Func_collision.detect
      ~proxy:(Func_collision.Bytecode (Codegen.runtime (Patterns.honeypot_proxy ())))
      ~logic:(Func_collision.Bytecode (Codegen.runtime (Patterns.honeypot_logic ())))
  in
  match collisions with
  | [ c ] ->
      check_s "selector recovered from bytecode" "0xdf4a3106"
        (Hexutil.to_hex c.Func_collision.selector);
      check_b "no names available" true (c.Func_collision.proxy_signature = None)
  | l -> Alcotest.failf "expected 1 collision, got %d" (List.length l)

let test_func_collision_mixed () =
  let collisions =
    Func_collision.detect
      ~proxy:(Func_collision.Source (Patterns.honeypot_proxy ()))
      ~logic:(Func_collision.Bytecode (Codegen.runtime (Patterns.honeypot_logic ())))
  in
  check_i "mixed-mode detection" 1 (List.length collisions)

let test_func_no_collision () =
  check_b "counter vs proxy clean" false
    (Func_collision.has_collision
       ~proxy:(Func_collision.Source (Patterns.slot_var_proxy ()))
       ~logic:(Func_collision.Source (Patterns.counter_logic ())))

let test_honeypot_classifier_source () =
  let v =
    Honeypot.classify
      ~proxy:(Func_collision.Source (Patterns.honeypot_proxy ()))
      ~logic:(Func_collision.Source (Patterns.honeypot_logic ()))
  in
  check_b "classified as honeypot" true v.Honeypot.is_honeypot;
  (match v.Honeypot.evidence with
  | [ e ] ->
      check_s "selector" "0xdf4a3106" (Hexutil.to_hex e.Honeypot.e_selector);
      check_b "bait" true e.Honeypot.e_logic_pays_caller;
      check_b "trap" true e.Honeypot.e_proxy_moves_assets
  | _ -> Alcotest.fail "expected one evidence record");
  (* The benign ownable collision (proxyType() etc.) is NOT a honeypot. *)
  let benign_proxy =
    Ast.contract "P"
      ~vars:[ { Ast.v_name = "logic"; v_ty = Ast.T_address } ]
      ~funcs:
        [
          Ast.func "proxyType" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
            [ Ast.Return_value (Ast.Const (U256.of_int 2)) ];
        ]
      ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])
  in
  let benign_logic =
    Ast.contract "L"
      ~funcs:
        [
          Ast.func "proxyType" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
            [ Ast.Return_value (Ast.Const (U256.of_int 2)) ];
        ]
  in
  let v =
    Honeypot.classify
      ~proxy:(Func_collision.Source benign_proxy)
      ~logic:(Func_collision.Source benign_logic)
  in
  check_b "benign collision not a honeypot" false v.Honeypot.is_honeypot;
  check_i "evidence still recorded" 1 (List.length v.Honeypot.evidence)

let test_honeypot_classifier_bytecode () =
  (* The hidden case: both sides bytecode-only. *)
  let v =
    Honeypot.classify
      ~proxy:(Func_collision.Bytecode (Codegen.runtime (Patterns.honeypot_proxy ())))
      ~logic:(Func_collision.Bytecode (Codegen.runtime (Patterns.honeypot_logic ())))
  in
  check_b "bytecode-only honeypot classified" true v.Honeypot.is_honeypot

let test_dispatcher_table_targets () =
  let c = Patterns.counter_logic () in
  let code = Codegen.runtime c in
  let table = Selector_extract.dispatcher_table code in
  check_i "three entries" 3 (List.length table);
  (* Every recovered target must be a valid JUMPDEST. *)
  let dests = Evm.Disasm.jumpdests code in
  List.iter
    (fun (_, target) ->
      check_b "target is a jumpdest" true (List.mem target dests))
    table

(* ------------------------------------------------------------------ *)
(* Storage collisions                                                  *)
(* ------------------------------------------------------------------ *)

let test_storage_collision_source () =
  let collisions =
    Storage_collision.detect
      ~proxy:(Storage_collision.Source (Patterns.audius_proxy ()))
      ~logic:(Storage_collision.Source (Patterns.audius_logic ()))
  in
  check_b "found" true (collisions <> []);
  check_b "slot 0" true
    (List.exists
       (fun c ->
         Storage_access.slot_id_compare c.Storage_collision.slot
           (Storage_access.Fixed U256.zero)
         = 0)
       collisions);
  check_b "sensitive (owner guards caller)" true
    (List.exists (fun c -> c.Storage_collision.sensitive) collisions)

let test_storage_collision_bytecode () =
  let collisions =
    Storage_collision.detect
      ~proxy:(Storage_collision.Bytecode (Codegen.runtime (Patterns.audius_proxy ())))
      ~logic:(Storage_collision.Bytecode (Codegen.runtime (Patterns.audius_logic ())))
  in
  check_b "found from bytecode alone" true (collisions <> [])

let test_storage_padding_not_flagged () =
  (* The USCHunt false positive: unused padding variables must not count. *)
  check_b "padding pair clean" false
    (Storage_collision.has_collision
       ~proxy:(Storage_collision.Source (Patterns.padding_proxy ()))
       ~logic:(Storage_collision.Source (Patterns.padding_logic ())))

let test_storage_no_collision_on_aligned_pair () =
  (* EIP-1967 proxy keeps state in keccak-derived slots: no overlap with a
     logic contract using slot 0. *)
  check_b "aligned pair clean" false
    (Storage_collision.has_collision
       ~proxy:(Storage_collision.Source (Patterns.eip1967_proxy ()))
       ~logic:(Storage_collision.Source (Patterns.counter_logic ())))

let test_storage_exploit_verification () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.audius_logic ()) in
  let proxy = deploy chain ~from:alice (Patterns.audius_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  let collisions =
    Storage_collision.detect
      ~proxy:(Storage_collision.Source (Patterns.audius_proxy ()))
      ~logic:(Storage_collision.Source (Patterns.audius_logic ()))
  in
  let verified =
    Storage_collision.verify ~chain ~proxy_address:proxy ~logic_address:logic
      collisions
  in
  check_b "audius exploit verified by execution" true
    (List.exists (fun c -> c.Storage_collision.verified) verified);
  (* Verification must not leave residue. *)
  let host = Chain.host_at_head chain in
  check_u "owner untouched after verification"
    (Evm.Address.to_u256 alice)
    (U256.logand
       (host.Evm.Host.get_storage proxy U256.zero)
       (U256.pred (U256.shift_left U256.one 160)))

(* ------------------------------------------------------------------ *)
(* Upgrade authority                                                   *)
(* ------------------------------------------------------------------ *)

let test_upgrade_auth_gated () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain ~from:alice (Patterns.slot_var_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  (* setLogic requires msg.sender == owner (= alice); mallory can't. *)
  match
    Upgrade_auth.analyze chain proxy (Proxy_detect.Storage_slot U256.one)
  with
  | Upgrade_auth.Gated -> ()
  | a -> Alcotest.failf "expected gated, got %s" (Upgrade_auth.to_string a)

let test_upgrade_auth_open () =
  let chain = Chain.create () in
  (* An UNPROTECTED setLogic: no owner check. *)
  let open_proxy =
    Ast.contract "OpenProxy"
      ~vars:
        [
          { Ast.v_name = "owner"; v_ty = Ast.T_address };
          { Ast.v_name = "logic"; v_ty = Ast.T_address };
        ]
      ~funcs:
        [
          Ast.func "setLogic"
            ~params:[ { Ast.p_name = "l"; p_ty = Ast.T_address } ]
            [ Ast.Store ("logic", Ast.Param 0) ];
        ]
      ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])
  in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain ~from:alice open_proxy in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  (match
     Upgrade_auth.analyze chain proxy (Proxy_detect.Storage_slot U256.one)
   with
  | Upgrade_auth.Open_to_anyone sel ->
      check_s "the unprotected setter" 
        (Hexutil.to_hex (Keccak.selector "setLogic(address)"))
        (Hexutil.to_hex sel)
  | a -> Alcotest.failf "expected open, got %s" (Upgrade_auth.to_string a));
  (* The probe must not leave residue. *)
  let host = Chain.host_at_head chain in
  check_u "logic slot unchanged after analysis" (Evm.Address.to_u256 logic)
    (host.Evm.Host.get_storage proxy U256.one)

let test_upgrade_auth_immutable () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy =
    Chain.install_contract chain ~runtime:(Patterns.eip1167_runtime logic) ()
  in
  check_s "minimal proxy immutable" "immutable (hard-coded logic)"
    (Upgrade_auth.to_string
       (Upgrade_auth.analyze chain proxy Proxy_detect.Hardcoded))

(* ------------------------------------------------------------------ *)
(* Storage access profiling                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_widths () =
  let code = Codegen.runtime (Patterns.audius_logic ()) in
  let accesses = Storage_access.profile code in
  let has ~kind ~offset ~width =
    List.exists
      (fun (a : Storage_access.access) ->
        a.Storage_access.a_kind = kind
        && a.Storage_access.a_offset = offset
        && a.Storage_access.a_width = width
        && Storage_access.slot_id_compare a.Storage_access.a_slot
             (Storage_access.Fixed U256.zero)
           = 0)
      accesses
  in
  check_b "bool write at offset 0" true
    (has ~kind:Storage_access.Write ~offset:0 ~width:1);
  check_b "bool write at offset 1" true
    (has ~kind:Storage_access.Write ~offset:1 ~width:1);
  check_b "address-wide raw write" true
    (has ~kind:Storage_access.Write ~offset:0 ~width:20);
  check_b "bool read at offset 1" true
    (has ~kind:Storage_access.Read ~offset:1 ~width:1)

let test_profile_guard_flag () =
  let code = Codegen.runtime (Patterns.audius_proxy ()) in
  let accesses = Storage_access.profile code in
  check_b "owner read guards caller" true
    (List.exists
       (fun (a : Storage_access.access) ->
         a.Storage_access.a_guards_caller
         && Storage_access.slot_id_compare a.Storage_access.a_slot
              (Storage_access.Fixed U256.zero)
            = 0)
       accesses)

let test_profile_mapping () =
  let code = Codegen.runtime (Patterns.erc20ish_logic ()) in
  let accesses = Storage_access.profile code in
  check_b "mapping access at base slot 1" true
    (List.exists
       (fun (a : Storage_access.access) ->
         Storage_access.slot_id_compare a.Storage_access.a_slot
           (Storage_access.Mapping U256.one)
         = 0)
       accesses)

let test_findings_report () =
  let chain = Chain.create () in
  let hp_logic = deploy chain (Patterns.honeypot_logic ()) in
  let hp_proxy = deploy chain ~from:mallory (Patterns.honeypot_proxy ()) in
  Chain.set_storage_direct chain hp_proxy U256.one (Evm.Address.to_u256 hp_logic);
  let au_logic = deploy chain (Patterns.audius_logic ()) in
  let au_proxy = deploy chain ~from:alice (Patterns.audius_proxy ()) in
  Chain.set_storage_direct chain au_proxy U256.one (Evm.Address.to_u256 au_logic);
  let report = Pipeline.analyze ~chain ~source:(fun _ -> None) () in
  let findings = Findings.of_report report in
  check_b "nonempty" true (findings <> []);
  (* Verified Audius exploit is critical; honeypot is high; sorted order. *)
  (match findings with
  | first :: _ -> check_b "critical first" true (first.Findings.f_severity = Findings.Critical)
  | [] -> ());
  check_b "has a critical storage finding" true
    (List.exists
       (fun f ->
         f.Findings.f_severity = Findings.Critical
         && Evm.Address.equal f.Findings.f_proxy au_proxy)
       findings);
  check_b "has a high honeypot finding" true
    (List.exists
       (fun f ->
         f.Findings.f_severity = Findings.High
         && Evm.Address.equal f.Findings.f_proxy hp_proxy)
       findings);
  let text = Findings.render findings in
  check_b "render mentions CRITICAL" true
    (let rec has i =
       i + 8 <= String.length text && (String.sub text i 8 = "CRITICAL" || has (i + 1))
     in
     has 0);
  check_b "json serializes" true
    (String.length (Report.Json.to_string (Findings.to_json findings)) > 100)

let test_profile_cross_block () =
  (* The slot constant is pushed in one block; the SLOAD happens after a
     resolved jump — only stack propagation across CFG edges sees it. *)
  let code =
    Evm.Asm.assemble
      [
        Evm.Asm.Push_int 5;
        (* the slot, left on the stack across the jump *)
        Evm.Asm.Push_label "reader";
        Evm.Asm.Op Evm.Opcode.JUMP;
        Evm.Asm.Jumpdest "reader";
        Evm.Asm.Op Evm.Opcode.SLOAD;
        Evm.Asm.Op Evm.Opcode.POP;
        Evm.Asm.Op Evm.Opcode.STOP;
      ]
  in
  let accesses = Storage_access.profile code in
  check_b "read of slot 5 found across blocks" true
    (List.exists
       (fun (a : Storage_access.access) ->
         a.Storage_access.a_kind = Storage_access.Read
         && Storage_access.slot_id_compare a.Storage_access.a_slot
              (Storage_access.Fixed (U256.of_int 5))
            = 0)
       accesses)

(* ------------------------------------------------------------------ *)
(* Dedup                                                               *)
(* ------------------------------------------------------------------ *)

let test_dedup_grouping () =
  let chain = Chain.create () in
  let code = Codegen.runtime (Patterns.counter_logic ()) in
  let a1 = Chain.install_contract chain ~runtime:code () in
  let a2 = Chain.install_contract chain ~runtime:code () in
  let b = Chain.install_contract chain ~runtime:"\x00" () in
  let groups =
    Dedup.group_by_code_hash ~code_of:(Chain.code_at chain) [ a1; a2; b ]
  in
  check_i "two unique codes" 2 (List.length groups);
  Alcotest.(check (list int))
    "distribution" [ 2; 1 ]
    (Dedup.duplicate_distribution ~code_of:(Chain.code_at chain) [ a1; a2; b ])

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_end_to_end () =
  let chain = Chain.create () in
  (* Population: honeypot pair, audius pair, a minimal proxy, a library
     caller, a plain contract, and a clone of the plain contract. *)
  let hp_logic = deploy chain (Patterns.honeypot_logic ()) in
  let hp_proxy = deploy chain ~from:mallory (Patterns.honeypot_proxy ()) in
  Chain.set_storage_direct chain hp_proxy U256.one (Evm.Address.to_u256 hp_logic);
  let au_logic = deploy chain (Patterns.audius_logic ()) in
  let au_proxy = deploy chain ~from:alice (Patterns.audius_proxy ()) in
  Chain.set_storage_direct chain au_proxy U256.one (Evm.Address.to_u256 au_logic);
  let counter = deploy chain (Patterns.counter_logic ()) in
  let minimal =
    Chain.install_contract chain ~runtime:(Patterns.eip1167_runtime counter) ()
  in
  let lib_user = deploy chain (Patterns.library_caller ~lib:counter) in
  let plain_code = Codegen.runtime (Patterns.erc20ish_logic ()) in
  let plain1 = Chain.install_contract chain ~runtime:plain_code () in
  let plain2 = Chain.install_contract chain ~runtime:plain_code () in
  ignore (lib_user, plain1, plain2);
  (* Source registry: only the audius pair is "verified". *)
  let sources =
    [
      (au_proxy, Patterns.audius_proxy ());
      (au_logic, Patterns.audius_logic ());
    ]
  in
  let source addr =
    List.find_map
      (fun (a, c) -> if Evm.Address.equal a addr then Some c else None)
      sources
  in
  let report = Pipeline.analyze ~chain ~source () in
  let stats = report.Pipeline.stats in
  check_i "analyzed all" 9 stats.Pipeline.s_analyzed;
  (* Proxies: honeypot, audius, minimal. Library caller and plain ones no. *)
  check_i "three proxies" 3 stats.Pipeline.s_proxies;
  check_i "clone dedup hit" 1 stats.Pipeline.s_dedup_hits;
  check_b "function collision found" true (stats.Pipeline.s_func_colliding_pairs >= 1);
  check_b "storage collision found" true (stats.Pipeline.s_storage_colliding_pairs >= 1);
  check_b "audius verified" true (stats.Pipeline.s_verified_storage_pairs >= 1);
  (* Per-contract checks. *)
  let find addr =
    List.find
      (fun r -> Evm.Address.equal r.Pipeline.r_address addr)
      report.Pipeline.contracts
  in
  check_b "minimal classified 1167" true
    ((find minimal).Pipeline.r_standard = Some Standard_classify.Eip1167);
  check_b "honeypot has func collision pair" true
    (List.exists
       (fun p -> p.Pipeline.p_func_collisions <> [])
       (find hp_proxy).Pipeline.r_pairs);
  check_b "honeypot pair is bytecode-bytecode" true
    (List.for_all
       (fun p -> p.Pipeline.p_method = Pipeline.Bytecode_bytecode)
       (find hp_proxy).Pipeline.r_pairs);
  check_b "audius pair is source-source" true
    (List.for_all
       (fun p -> p.Pipeline.p_method = Pipeline.Source_source)
       (find au_proxy).Pipeline.r_pairs);
  check_b "library caller is not a proxy" true
    (not (Pipeline.is_proxy_report (find lib_user)))

let suite =
  [
    Alcotest.test_case "dispatcher extraction" `Quick test_dispatcher_extraction;
    Alcotest.test_case "naive push4 FPs rejected" `Quick test_naive_push4_false_positives;
    Alcotest.test_case "probe avoids push4" `Quick test_probe_avoids_all_push4;
    Alcotest.test_case "detect minimal proxy" `Quick test_detect_minimal_proxy;
    Alcotest.test_case "detect slot proxy" `Quick test_detect_slot_proxy_on_chain;
    Alcotest.test_case "detect eip1967 slot" `Quick test_detect_eip1967_slot;
    Alcotest.test_case "prefilter non-proxy" `Quick test_detect_non_proxy_no_delegatecall;
    Alcotest.test_case "library caller excluded" `Quick test_detect_library_caller_excluded;
    Alcotest.test_case "diamond missed (8.1)" `Quick test_detect_diamond_missed;
    Alcotest.test_case "hidden contract detected" `Quick test_detect_hidden_contract;
    Alcotest.test_case "beacon proxy (computed target)" `Quick test_detect_beacon_proxy;
    Alcotest.test_case "diamond probe extension (8.2)" `Quick test_diamond_probe_extension;
    Alcotest.test_case "diamond probe no FP" `Quick test_diamond_probe_no_false_positive;
    Alcotest.test_case "pipeline diamond extension" `Quick test_pipeline_diamond_extension;
    Alcotest.test_case "probe leaves no residue" `Quick test_detection_does_not_mutate_state;
    Alcotest.test_case "algorithm1 history" `Quick test_algorithm1_recovers_history;
    Alcotest.test_case "algorithm1 static slot" `Quick test_algorithm1_static_slot;
    Alcotest.test_case "resolve minimal" `Quick test_resolve_minimal;
    Alcotest.test_case "standard classification" `Quick test_standard_classification;
    Alcotest.test_case "func collision source" `Quick test_func_collision_source_source;
    Alcotest.test_case "func collision bytecode" `Quick test_func_collision_bytecode_bytecode;
    Alcotest.test_case "func collision mixed" `Quick test_func_collision_mixed;
    Alcotest.test_case "func no collision" `Quick test_func_no_collision;
    Alcotest.test_case "honeypot classifier source" `Quick test_honeypot_classifier_source;
    Alcotest.test_case "honeypot classifier bytecode" `Quick test_honeypot_classifier_bytecode;
    Alcotest.test_case "dispatcher table" `Quick test_dispatcher_table_targets;
    Alcotest.test_case "storage collision source" `Quick test_storage_collision_source;
    Alcotest.test_case "storage collision bytecode" `Quick test_storage_collision_bytecode;
    Alcotest.test_case "storage padding clean" `Quick test_storage_padding_not_flagged;
    Alcotest.test_case "storage aligned pair clean" `Quick
      test_storage_no_collision_on_aligned_pair;
    Alcotest.test_case "storage exploit verification" `Quick
      test_storage_exploit_verification;
    Alcotest.test_case "upgrade auth gated" `Quick test_upgrade_auth_gated;
    Alcotest.test_case "upgrade auth open" `Quick test_upgrade_auth_open;
    Alcotest.test_case "upgrade auth immutable" `Quick test_upgrade_auth_immutable;
    Alcotest.test_case "profile widths" `Quick test_profile_widths;
    Alcotest.test_case "profile guard flag" `Quick test_profile_guard_flag;
    Alcotest.test_case "profile mapping" `Quick test_profile_mapping;
    Alcotest.test_case "profile cross-block" `Quick test_profile_cross_block;
    Alcotest.test_case "dedup grouping" `Quick test_dedup_grouping;
    Alcotest.test_case "findings report" `Quick test_findings_report;
    Alcotest.test_case "pipeline end to end" `Quick test_pipeline_end_to_end;
  ]
