(* The staged batch engine and its ProxioN instantiation: scheduling
   order, event stream, checkpoint/resume byte-identity, dedup-cache
   persistence across runs, and error isolation. *)

module Generate = Dataset.Generate
module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Generic engine: batching and events                                 *)
(* ------------------------------------------------------------------ *)

let int_engine ?(batch_size = 3) () =
  Engine.create ~batch_size ~subject:string_of_int
    ~process:(fun _ n -> Ok (string_of_int n))
    ()

let test_batch_ordering () =
  let t = int_engine () in
  let events = ref [] in
  Engine.subscribe t (fun ev -> events := ev :: !events);
  Engine.submit t [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  check_i "pending" 8 (Engine.pending t);
  Engine.run t;
  check_sl "results keep submission order"
    [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8" ]
    (Engine.results t);
  check_i "batches" 3 (Engine.batches_done t);
  let batch_sizes =
    List.rev !events
    |> List.filter_map (function
         | Engine.Batch_started { index; size } -> Some (index, size)
         | _ -> None)
  in
  Alcotest.(check (list (pair int int)))
    "batch split" [ (0, 3); (1, 3); (2, 2) ] batch_sizes;
  let finished =
    List.exists
      (function
        | Engine.Run_finished { processed = 8; skipped = 0; _ } -> true
        | _ -> false)
      !events
  in
  check_b "Run_finished event" true finished

let test_max_batches_interruption () =
  let t = int_engine () in
  Engine.submit t [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Engine.run ~max_batches:1 t;
  check_i "one batch processed" 3 (Engine.processed_count t);
  check_i "rest stays queued" 5 (Engine.pending t);
  Engine.run t;
  check_i "drained" 0 (Engine.pending t);
  check_sl "order preserved across runs"
    [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8" ]
    (Engine.results t)

let test_generic_checkpoint_roundtrip () =
  let t = int_engine () in
  Engine.submit t [ 10; 20; 30; 40; 50 ];
  Engine.run ~max_batches:1 t;
  let json =
    Engine.checkpoint
      ~item_to_json:(fun n -> Report.Json.Int n)
      ~res_to_json:(fun s -> Report.Json.String s)
      ~extra:(Report.Json.String "opaque")
      t
  in
  let item_of_json = function
    | Report.Json.Int n -> Ok n
    | _ -> Error "not an int"
  in
  let res_of_json = function
    | Report.Json.String s -> Ok s
    | _ -> Error "not a string"
  in
  match
    Engine.restore ~subject:string_of_int
      ~process:(fun _ n -> Ok (string_of_int n))
      ~item_of_json ~res_of_json json
  with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok (t', extra) ->
      check_s "extra payload survives" "opaque"
        (match extra with Report.Json.String s -> s | _ -> "?");
      check_i "pending restored" 2 (Engine.pending t');
      check_i "batch counter restored" 1 (Engine.batches_done t');
      Engine.run t';
      check_sl "completion equals uninterrupted run"
        [ "10"; "20"; "30"; "40"; "50" ]
        (Engine.results t')

let test_stage_names_roundtrip () =
  List.iter
    (fun s ->
      match Engine.stage_of_name (Engine.stage_name s) with
      | Some s' -> check_b (Engine.stage_name s) true (s = s')
      | None -> Alcotest.failf "stage %s not parsed" (Engine.stage_name s))
    Engine.all_stages

(* ------------------------------------------------------------------ *)
(* Analyzer: checkpoint/resume byte-identity                           *)
(* ------------------------------------------------------------------ *)

let small_config = { Generate.quick_config with Generate.total = 300; seed = 11 }

let report_string r = Report.Json.to_string (Proxion.Serialize.report_to_json r)

let test_checkpoint_resume_identical_report () =
  (* Reference: one uninterrupted run. *)
  let land_a = Generate.generate small_config in
  let reference =
    Proxion.Pipeline.analyze ~chain:land_a.Generate.chain
      ~source:land_a.Generate.source_of ()
  in
  (* Interrupted run on an identically regenerated landscape. *)
  let land_b = Generate.generate small_config in
  let config =
    Proxion.Pipeline.Config.with_batch_size 16 Proxion.Pipeline.Config.default
  in
  let t =
    Proxion.Analyzer.create ~config ~chain:land_b.Generate.chain
      ~source:land_b.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run ~max_batches:2 t;
  check_b "interrupted mid-queue" true (Proxion.Analyzer.pending t > 0);
  let ck = Proxion.Analyzer.checkpoint t in
  (* Serialize to text and parse back: exactly what the CLI's
     --checkpoint/--resume file round-trip does. *)
  let ck_text = Report.Json.to_string ~pretty:true ck in
  let ck' =
    match Report.Json.parse ck_text with
    | Ok j -> j
    | Error e -> Alcotest.failf "checkpoint does not reparse: %s" e
  in
  (* "New process": regenerate the landscape and resume there. *)
  let land_c = Generate.generate small_config in
  let resumed =
    match
      Proxion.Analyzer.restore ~chain:land_c.Generate.chain
        ~source:land_c.Generate.source_of ck'
    with
    | Ok t' -> t'
    | Error e -> Alcotest.failf "restore failed: %s" e
  in
  Proxion.Analyzer.run resumed;
  check_i "queue drained" 0 (Proxion.Analyzer.pending resumed);
  check_s "resumed report is byte-identical" (report_string reference)
    (report_string (Proxion.Analyzer.report resumed))

(* ------------------------------------------------------------------ *)
(* Analyzer: dedup cache persists across runs                          *)
(* ------------------------------------------------------------------ *)

let test_dedup_cache_across_runs () =
  let chain = Chain.create () in
  let logic =
    Chain.install_contract chain
      ~runtime:(Codegen.runtime (Patterns.counter_logic ()))
      ()
  in
  let clone () =
    Chain.install_contract chain ~runtime:(Patterns.eip1167_runtime logic) ()
  in
  let p1 = clone () in
  let p2 = clone () in
  let t = Proxion.Analyzer.create ~chain ~source:(fun _ -> None) () in
  Proxion.Analyzer.submit t [ p1 ];
  Proxion.Analyzer.run t;
  (* Second run on the same analyzer: the identical bytecode must hit the
     cache populated by the first run. *)
  Proxion.Analyzer.submit t [ p2 ];
  Proxion.Analyzer.run t;
  let report = Proxion.Analyzer.report t in
  check_i "both analyzed" 2 report.Proxion.Pipeline.stats.Proxion.Pipeline.s_analyzed;
  check_i "clone hits the cache" 1
    report.Proxion.Pipeline.stats.Proxion.Pipeline.s_dedup_hits;
  let second =
    List.find
      (fun r -> Evm.Address.equal r.Proxion.Pipeline.r_address p2)
      report.Proxion.Pipeline.contracts
  in
  check_b "second contract flagged as dedup hit" true
    second.Proxion.Pipeline.r_dedup_hit;
  check_b "still detected as proxy" true
    (Proxion.Pipeline.is_proxy_report second)

(* ------------------------------------------------------------------ *)
(* Analyzer: error isolation                                           *)
(* ------------------------------------------------------------------ *)

let test_error_isolation () =
  let chain = Chain.create () in
  let logic =
    Chain.install_contract chain
      ~runtime:(Codegen.runtime (Patterns.counter_logic ()))
      ()
  in
  let bad =
    Chain.install_contract chain ~runtime:(Patterns.eip1167_runtime logic) ()
  in
  let source addr =
    if Evm.Address.equal addr bad then
      failwith "synthetic source oracle outage"
    else None
  in
  let t = Proxion.Analyzer.create ~chain ~source () in
  let errored = ref [] in
  let skipped_events = ref [] in
  Proxion.Analyzer.subscribe t (fun ev ->
      match ev with
      | Engine.Stage_errored { stage; _ } -> errored := stage :: !errored
      | Engine.Item_skipped { subject; _ } ->
          skipped_events := subject :: !skipped_events
      | _ -> ());
  (* The oracle raises while analyzing [bad]'s pair; [logic] and the
     surrounding batch must still complete. *)
  Proxion.Analyzer.submit t [ logic; bad ];
  Proxion.Analyzer.run t;
  check_i "queue drained despite the failure" 0 (Proxion.Analyzer.pending t);
  let report = Proxion.Analyzer.report t in
  check_i "healthy contract still reported" 1
    report.Proxion.Pipeline.stats.Proxion.Pipeline.s_analyzed;
  check_s "healthy contract is the logic" (Evm.Address.to_hex logic)
    (Evm.Address.to_hex
       (List.hd report.Proxion.Pipeline.contracts).Proxion.Pipeline.r_address);
  (match Proxion.Analyzer.skipped t with
  | [ r ] ->
      check_s "dead letter names the bad contract" (Evm.Address.to_hex bad)
        r.Engine.sk_subject;
      check_b "classified permanent" true (r.Engine.sk_class = Engine.Permanent);
      check_b "attributed to the collision stage" true
        (r.Engine.sk_stage = Some Engine.Func_collision)
  | l -> Alcotest.failf "expected one dead letter, got %d" (List.length l));
  check_b "Stage_errored names the collision stage" true
    (List.mem Engine.Func_collision !errored);
  check_sl "Item_skipped event for the bad contract"
    [ Evm.Address.to_hex bad ]
    !skipped_events

(* ------------------------------------------------------------------ *)
(* Task_channel: waking and shutdown semantics                          *)
(* ------------------------------------------------------------------ *)

(* Regression: closing the channel must not drop chunks already pushed —
   workers drain the backlog before seeing [None]. *)
let test_task_channel_drain_on_close () =
  let ch = Engine.Task_channel.create () in
  Engine.Task_channel.push_many ch [ 1; 2; 3 ];
  Engine.Task_channel.push ch 4;
  Engine.Task_channel.close ch;
  let drained = ref [] in
  let rec go () =
    match Engine.Task_channel.pop ch with
    | Some v ->
        drained := v :: !drained;
        go ()
    | None -> ()
  in
  go ();
  check_sl "closed channel drains in-flight elements in order"
    [ "1"; "2"; "3"; "4" ]
    (List.rev_map string_of_int !drained);
  check_b "pop stays None after the drain" true
    (Engine.Task_channel.pop ch = None);
  check_i "length is zero" 0 (Engine.Task_channel.length ch);
  (* close is idempotent and wakes a pop blocked on another domain. *)
  let ch2 = Engine.Task_channel.create () in
  let waiter = Domain.spawn (fun () -> Engine.Task_channel.pop ch2) in
  Engine.Task_channel.close ch2;
  Engine.Task_channel.close ch2;
  check_b "close wakes a blocked pop with None" true (Domain.join waiter = None)

let test_task_channel_push_many_wakes_sleepers () =
  let ch = Engine.Task_channel.create () in
  let w1 = Domain.spawn (fun () -> Engine.Task_channel.pop ch) in
  let w2 = Domain.spawn (fun () -> Engine.Task_channel.pop ch) in
  Engine.Task_channel.push_many ch [ 10; 20 ];
  let a = Domain.join w1 in
  let b = Domain.join w2 in
  Engine.Task_channel.close ch;
  check_b "one coalesced broadcast feeds both sleepers" true
    (List.sort compare [ a; b ] = [ Some 10; Some 20 ]);
  check_b "push_many on an empty list is a no-op" true
    (Engine.Task_channel.push_many ch [];
     Engine.Task_channel.pop_opt ch = None)

let suite =
  [
    Alcotest.test_case "batch ordering and events" `Quick test_batch_ordering;
    Alcotest.test_case "max-batches interruption" `Quick
      test_max_batches_interruption;
    Alcotest.test_case "generic checkpoint roundtrip" `Quick
      test_generic_checkpoint_roundtrip;
    Alcotest.test_case "stage names roundtrip" `Quick test_stage_names_roundtrip;
    Alcotest.test_case "checkpoint/resume yields identical report" `Quick
      test_checkpoint_resume_identical_report;
    Alcotest.test_case "dedup cache persists across runs" `Quick
      test_dedup_cache_across_runs;
    Alcotest.test_case "error isolation skips only the failing item" `Quick
      test_error_isolation;
    Alcotest.test_case "task channel drains in-flight chunks after close"
      `Quick test_task_channel_drain_on_close;
    Alcotest.test_case "task channel push_many wakes sleeping workers" `Quick
      test_task_channel_push_many_wakes_sleepers;
  ]
