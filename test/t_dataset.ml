module Generate = Dataset.Generate
module Spec = Dataset.Spec

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Dataset.Prng.create 99 in
  let b = Dataset.Prng.create 99 in
  for _ = 1 to 100 do
    check_b "same stream" true (Dataset.Prng.next a = Dataset.Prng.next b)
  done;
  let c = Dataset.Prng.create 100 in
  check_b "different seed differs" false
    (Dataset.Prng.next (Dataset.Prng.create 99) = Dataset.Prng.next c)

let test_prng_bounds () =
  let rng = Dataset.Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Dataset.Prng.int rng 7 in
    check_b "in range" true (v >= 0 && v < 7);
    let f = Dataset.Prng.float rng in
    check_b "float range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_weighted () =
  let rng = Dataset.Prng.create 5 in
  let mutable_count = ref 0 in
  for _ = 1 to 2000 do
    match Dataset.Prng.pick_weighted rng [ ("a", 0.9); ("b", 0.1) ] with
    | "a" -> incr mutable_count
    | _ -> ()
  done;
  (* ~1800 expected; loose bounds. *)
  check_b "weights respected" true (!mutable_count > 1500 && !mutable_count < 2000)

(* ------------------------------------------------------------------ *)
(* Selector mining                                                     *)
(* ------------------------------------------------------------------ *)

let test_sig_mine () =
  let pairs = Dataset.Sig_mine.mine ~prefix:"t" ~count:3 () in
  check_i "three pairs" 3 (List.length pairs);
  List.iter
    (fun p ->
      check_b "distinct signatures" true (p.Dataset.Sig_mine.sig_a <> p.Dataset.Sig_mine.sig_b);
      check_b "selectors match" true
        (Keccak.selector p.Dataset.Sig_mine.sig_a = Keccak.selector p.Dataset.Sig_mine.sig_b);
      check_b "recorded selector" true
        (p.Dataset.Sig_mine.selector = Keccak.selector p.Dataset.Sig_mine.sig_a))
    pairs

let test_sig_mine_deterministic () =
  let a = Dataset.Sig_mine.mine ~prefix:"d" ~count:2 () in
  let b = Dataset.Sig_mine.mine ~prefix:"d" ~count:2 () in
  check_b "deterministic" true (a = b)

(* ------------------------------------------------------------------ *)
(* Landscape generation                                                *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Generate.quick_config with Generate.total = 800; seed = 11 }

let land_ = lazy (Generate.generate small_config)

let test_population_size () =
  let l = Lazy.force land_ in
  let n = List.length l.Generate.labels in
  (* Injections may push slightly past the nominal total. *)
  check_b "close to configured total" true (n >= 700 && n <= 1000)

let test_determinism () =
  let a = Generate.generate { small_config with Generate.total = 150 } in
  let b = Generate.generate { small_config with Generate.total = 150 } in
  check_b "same labels" true
    (List.map (fun l -> l.Generate.l_address) a.Generate.labels
    = List.map (fun l -> l.Generate.l_address) b.Generate.labels)

let test_proxy_share () =
  let l = Lazy.force land_ in
  let n = List.length l.Generate.labels in
  let p = List.length (Generate.proxies l) in
  let share = float_of_int p /. float_of_int n in
  check_b
    (Printf.sprintf "proxy share %.2f near 0.542" share)
    true
    (share > 0.40 && share < 0.68)

let test_source_share () =
  let l = Lazy.force land_ in
  let n = List.length l.Generate.labels in
  let s = List.length (List.filter (fun x -> x.Generate.l_has_source) l.Generate.labels) in
  let share = float_of_int s /. float_of_int n in
  check_b (Printf.sprintf "source share %.2f near 0.18" share) true
    (share > 0.10 && share < 0.30)

let test_labels_consistent_with_chain () =
  let l = Lazy.force land_ in
  List.iter
    (fun lbl ->
      check_b "code exists" true
        (Chain.code_at l.Generate.chain lbl.Generate.l_address <> ""))
    l.Generate.labels

let test_source_registry_consistent () =
  let l = Lazy.force land_ in
  List.iter
    (fun lbl ->
      check_b "registry matches label" true
        (lbl.Generate.l_has_source = (l.Generate.source_of lbl.Generate.l_address <> None)))
    l.Generate.labels

let test_minimal_proxies_dominate () =
  let l = Lazy.force land_ in
  let proxies = Generate.proxies l in
  let minimal =
    List.filter (fun x -> x.Generate.l_kind = Generate.K_minimal_proxy) proxies
  in
  let share = float_of_int (List.length minimal) /. float_of_int (List.length proxies) in
  check_b (Printf.sprintf "minimal share %.2f near 0.89" share) true (share > 0.7)

let test_injected_collisions_have_ground_truth () =
  let l = Lazy.force land_ in
  let audius =
    List.filter (fun x -> x.Generate.l_kind = Generate.K_audius_proxy) l.Generate.labels
  in
  check_b "storage injections exist" true (audius <> []);
  List.iter
    (fun x -> check_b "labelled storage collision" true x.Generate.l_storage_collision)
    audius;
  let ownable =
    List.filter (fun x -> x.Generate.l_kind = Generate.K_ownable_clone) l.Generate.labels
  in
  List.iter
    (fun x -> check_b "ownable labelled func collision" true x.Generate.l_func_collision)
    ownable

let test_pipeline_recovers_ground_truth () =
  let l = Lazy.force land_ in
  let report =
    Proxion.Pipeline.analyze ~chain:l.Generate.chain ~source:l.Generate.source_of
      ()
  in
  let by_addr = Hashtbl.create 512 in
  List.iter
    (fun r -> Hashtbl.replace by_addr r.Proxion.Pipeline.r_address r)
    report.Proxion.Pipeline.contracts;
  let tp = ref 0 and fp = ref 0 and fn = ref 0 and diamond_misses = ref 0 in
  List.iter
    (fun lbl ->
      match Hashtbl.find_opt by_addr lbl.Generate.l_address with
      | None -> ()
      | Some r -> (
          let detected = Proxion.Pipeline.is_proxy_report r in
          match (lbl.Generate.l_is_proxy, detected) with
          | true, true -> incr tp
          | true, false ->
              incr fn;
              if lbl.Generate.l_kind = Generate.K_diamond_proxy then
                incr diamond_misses
          | false, true -> incr fp
          | false, false -> ()))
    l.Generate.labels;
  check_i "no false positives" 0 !fp;
  (* All misses must be the documented diamond limitation. *)
  check_i "all misses are diamonds" !diamond_misses !fn;
  check_b "finds nearly everything" true (!tp > 0 && !fn <= 3);
  (* Honeypot classification discriminates: injected honeypots count,
     benign ownable-clone collisions do not. *)
  let injected_honeypots =
    List.length
      (List.filter (fun x -> x.Generate.l_kind = Generate.K_honeypot_proxy) l.Generate.labels)
  in
  let stats = report.Proxion.Pipeline.stats in
  check_b
    (Printf.sprintf "honeypot pairs %d vs injected %d (func-colliding %d)"
       stats.Proxion.Pipeline.s_honeypot_pairs injected_honeypots
       stats.Proxion.Pipeline.s_func_colliding_pairs)
    true
    (stats.Proxion.Pipeline.s_honeypot_pairs >= injected_honeypots
    && stats.Proxion.Pipeline.s_honeypot_pairs
       < stats.Proxion.Pipeline.s_func_colliding_pairs)

let test_emulation_error_rate () =
  let l = Lazy.force land_ in
  let report =
    Proxion.Pipeline.analyze
      ~config:
        { Proxion.Pipeline.Config.default with verify_storage = false }
      ~chain:l.Generate.chain ~source:l.Generate.source_of ()
  in
  let n = report.Proxion.Pipeline.stats.Proxion.Pipeline.s_analyzed in
  let errors = report.Proxion.Pipeline.stats.Proxion.Pipeline.s_emulation_errors in
  let rate = float_of_int errors /. float_of_int n in
  (* broken_rate is 1%; allow generous sampling noise at 800 contracts. *)
  check_b (Printf.sprintf "error rate %.3f near broken_rate" rate) true
    (rate > 0.001 && rate < 0.04);
  (* Every emulation error is a deliberately broken contract. *)
  List.iter
    (fun r ->
      match r.Proxion.Pipeline.r_detection.Proxion.Proxy_detect.verdict with
      | Proxion.Proxy_detect.Emulation_error _ -> (
          match Generate.label_of l r.Proxion.Pipeline.r_address with
          | Some lbl ->
              check_b "error contracts are the broken ones" true
                (lbl.Generate.l_kind = Generate.K_broken)
          | None -> ())
      | _ -> ())
    report.Proxion.Pipeline.contracts

let test_year_partition () =
  let l = Lazy.force land_ in
  let total = List.length l.Generate.labels in
  let sum =
    List.fold_left (fun acc (_, ls) -> acc + List.length ls) 0 (Generate.by_year l)
  in
  check_i "by_year partitions population" total sum

(* ------------------------------------------------------------------ *)
(* Accuracy corpus                                                     *)
(* ------------------------------------------------------------------ *)

let test_accuracy_corpus () =
  let corpus = Dataset.Accuracy.build () in
  let pairs = corpus.Dataset.Accuracy.pairs in
  check_b "substantial corpus" true (List.length pairs > 150);
  (* All pairs are source-available (Sanctuary-style). *)
  List.iter
    (fun p ->
      check_b "proxy source" true
        (corpus.Dataset.Accuracy.source_of p.Dataset.Accuracy.c_proxy <> None);
      check_b "logic source" true
        (corpus.Dataset.Accuracy.source_of p.Dataset.Accuracy.c_logic <> None))
    pairs;
  let positives_storage =
    List.filter (fun p -> p.Dataset.Accuracy.c_gt_storage) pairs
  in
  let positives_func = List.filter (fun p -> p.Dataset.Accuracy.c_gt_func) pairs in
  check_b "storage positives" true (List.length positives_storage >= 20);
  check_b "function positives" true (List.length positives_func >= 60);
  (* Hidden pairs exist (the CRUSH false-negative class). *)
  check_b "hidden storage positives" true
    (List.exists
       (fun p -> p.Dataset.Accuracy.c_gt_storage && not p.Dataset.Accuracy.c_has_tx)
       pairs)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng weighted" `Quick test_prng_weighted;
    Alcotest.test_case "sig mine" `Quick test_sig_mine;
    Alcotest.test_case "sig mine deterministic" `Quick test_sig_mine_deterministic;
    Alcotest.test_case "population size" `Slow test_population_size;
    Alcotest.test_case "generation deterministic" `Slow test_determinism;
    Alcotest.test_case "proxy share" `Slow test_proxy_share;
    Alcotest.test_case "source share" `Slow test_source_share;
    Alcotest.test_case "labels vs chain" `Slow test_labels_consistent_with_chain;
    Alcotest.test_case "source registry" `Slow test_source_registry_consistent;
    Alcotest.test_case "minimal proxies dominate" `Slow test_minimal_proxies_dominate;
    Alcotest.test_case "injected collisions labelled" `Slow
      test_injected_collisions_have_ground_truth;
    Alcotest.test_case "pipeline recovers ground truth" `Slow
      test_pipeline_recovers_ground_truth;
    Alcotest.test_case "year partition" `Slow test_year_partition;
    Alcotest.test_case "emulation error rate" `Slow test_emulation_error_rate;
    Alcotest.test_case "accuracy corpus" `Slow test_accuracy_corpus;
  ]
