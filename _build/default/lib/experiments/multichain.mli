(** The §8.2 multichain extension, in the mould of USCHunt's eight-chain
    survey: generate an independent landscape per EVM chain (each with its
    own chain id, seed, and population scale) and run the full ProxioN
    pipeline on every one.  The per-chain proxy shares and collision counts
    land in one comparison table. *)

type chain_row = {
  mc_name : string;
  mc_chain_id : int;
  mc_contracts : int;
  mc_proxies : int;
  mc_proxy_share : float;
  mc_func_collisions : int;
  mc_storage_collisions : int;
  mc_hidden_detected : int;
}

val chains : (string * int * float) list
(** (name, chain id, relative population scale) for the eight chains
    USCHunt covers. *)

val run : ?base_total:int -> ?seed:int -> unit -> chain_row list
(** [base_total] (default 1200) is Ethereum's population; other chains
    scale by their relative factor. *)

val render : chain_row list -> string

val to_json : chain_row list -> Report.Json.t
