module Accuracy = Dataset.Accuracy

type matrix = { tp : int; fp : int; tn : int; fn : int }

let accuracy m =
  let total = m.tp + m.fp + m.tn + m.fn in
  if total = 0 then 0.0 else float_of_int (m.tp + m.tn) /. float_of_int total

type row = { tool : string; kind : string; matrix : matrix }

let score pairs ~ground ~predicted =
  List.fold_left
    (fun m pair ->
      match (ground pair, predicted pair) with
      | true, true -> { m with tp = m.tp + 1 }
      | false, true -> { m with fp = m.fp + 1 }
      | false, false -> { m with tn = m.tn + 1 }
      | true, false -> { m with fn = m.fn + 1 })
    { tp = 0; fp = 0; tn = 0; fn = 0 }
    pairs

let run ?(size_factor = 1) () =
  let corpus = Accuracy.build ~size_factor () in
  let chain = corpus.Accuracy.chain in
  let source = corpus.Accuracy.source_of in
  let host = Chain.host_at_head chain in
  let pairs = corpus.Accuracy.pairs in

  (* --- ProxioN -------------------------------------------------------- *)
  let proxion_detects (p : Accuracy.pair_label) =
    Proxion.Proxy_detect.is_proxy
      (Proxion.Proxy_detect.detect ~host p.Accuracy.c_proxy)
  in
  let proxion_func p =
    proxion_detects p
    &&
    let side addr =
      match source addr with
      | Some ast -> Proxion.Func_collision.Source ast
      | None -> Proxion.Func_collision.Bytecode (Chain.code_at chain addr)
    in
    Proxion.Func_collision.has_collision
      ~proxy:(side p.Accuracy.c_proxy)
      ~logic:(side p.Accuracy.c_logic)
  in
  let proxion_storage p =
    proxion_detects p
    &&
    let side addr =
      match source addr with
      | Some ast -> Proxion.Storage_collision.Source ast
      | None -> Proxion.Storage_collision.Bytecode (Chain.code_at chain addr)
    in
    Proxion.Storage_collision.has_collision
      ~proxy:(side p.Accuracy.c_proxy)
      ~logic:(side p.Accuracy.c_logic)
  in

  (* --- USCHunt ---------------------------------------------------------*)
  let uschunt_ready (p : Accuracy.pair_label) =
    match (source p.Accuracy.c_proxy, source p.Accuracy.c_logic) with
    | Some proxy_ast, Some logic_ast -> (
        match
          ( Baselines.Uschunt_like.analyze ~address:p.Accuracy.c_proxy proxy_ast,
            Baselines.Uschunt_like.analyze ~address:p.Accuracy.c_logic logic_ast
          )
        with
        | ( Baselines.Uschunt_like.Analyzed { is_proxy },
            Baselines.Uschunt_like.Analyzed _ ) ->
            if is_proxy then Some (proxy_ast, logic_ast) else None
        | _ -> None)
    | _ -> None
  in
  let uschunt_func p =
    match uschunt_ready p with
    | Some (proxy, logic) ->
        Baselines.Uschunt_like.func_collisions ~proxy ~logic <> []
    | None -> false
  in
  let uschunt_storage p =
    match uschunt_ready p with
    | Some (proxy, logic) ->
        Baselines.Uschunt_like.storage_collisions ~proxy ~logic <> []
    | None -> false
  in

  (* --- CRUSH (storage only) ------------------------------------------- *)
  let crush_storage (p : Accuracy.pair_label) =
    Baselines.Crush_like.is_proxy chain p.Accuracy.c_proxy
    && Proxion.Storage_collision.has_collision
         ~proxy:
           (Proxion.Storage_collision.Bytecode
              (Chain.code_at chain p.Accuracy.c_proxy))
         ~logic:
           (Proxion.Storage_collision.Bytecode
              (Chain.code_at chain p.Accuracy.c_logic))
  in

  let ground_storage (p : Accuracy.pair_label) = p.Accuracy.c_gt_storage in
  let ground_func (p : Accuracy.pair_label) = p.Accuracy.c_gt_func in
  (* The paper scores each tool on the UNION of instances any tool
     reported (those are the cases that get manually verified); a pair no
     tool flags never enters the table. *)
  let storage_instances =
    List.filter
      (fun p -> uschunt_storage p || crush_storage p || proxion_storage p)
      pairs
  in
  let func_instances =
    List.filter (fun p -> uschunt_func p || proxion_func p) pairs
  in
  [
    {
      tool = "USCHunt";
      kind = "storage";
      matrix = score storage_instances ~ground:ground_storage ~predicted:uschunt_storage;
    };
    {
      tool = "CRUSH";
      kind = "storage";
      matrix = score storage_instances ~ground:ground_storage ~predicted:crush_storage;
    };
    {
      tool = "ProxioN";
      kind = "storage";
      matrix = score storage_instances ~ground:ground_storage ~predicted:proxion_storage;
    };
    {
      tool = "USCHunt";
      kind = "function";
      matrix = score func_instances ~ground:ground_func ~predicted:uschunt_func;
    };
    {
      tool = "ProxioN";
      kind = "function";
      matrix = score func_instances ~ground:ground_func ~predicted:proxion_func;
    };
  ]

let render rows =
  Report.table ~title:"Table 2: collision detection accuracy"
    ~header:[ "Collision"; "Tool"; "TP"; "FP"; "TN"; "FN"; "Accuracy" ]
    (List.map
       (fun r ->
         [
           r.kind;
           r.tool;
           string_of_int r.matrix.tp;
           string_of_int r.matrix.fp;
           string_of_int r.matrix.tn;
           string_of_int r.matrix.fn;
           Report.pct (accuracy r.matrix);
         ])
       rows)

let to_json rows =
  Report.Json.List
    (List.map
       (fun r ->
         Report.Json.Obj
           [
             ("collision", Report.Json.String r.kind);
             ("tool", Report.Json.String r.tool);
             ("tp", Report.Json.Int r.matrix.tp);
             ("fp", Report.Json.Int r.matrix.fp);
             ("tn", Report.Json.Int r.matrix.tn);
             ("fn", Report.Json.Int r.matrix.fn);
             ("accuracy", Report.Json.Float (accuracy r.matrix));
           ])
       rows)
