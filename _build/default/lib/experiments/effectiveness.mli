(** §6.2 — effectiveness against USCHunt and CRUSH on their home turf.

    The Sanctuary-style comparison restricts the landscape to
    source-available contracts and counts proxies each tool identifies
    (the paper: 35,924 vs 29,023, with USCHunt losing ~30% to compile
    failures) plus the function collisions only ProxioN reports.

    The CRUSH-style comparison runs on the full landscape: CRUSH finds
    pairs from transaction history (including library-call false
    positives), ProxioN finds them by emulation (including the hidden
    contracts CRUSH cannot see), and the storage-collision delta is
    reported. *)

type sanctuary = {
  sa_contracts : int;  (** Source-available population. *)
  sa_uschunt_failures : int;  (** Compile failures. *)
  sa_uschunt_proxies : int;
  sa_proxion_proxies : int;
  sa_proxion_errors : int;
  sa_collisions_proxion_only : int;
      (** Function-colliding pairs ProxioN reports that USCHunt misses. *)
}

type crush_cmp = {
  cr_contracts : int;
  cr_crush_proxies : int;
  cr_crush_library_fps : int;
      (** CRUSH "proxies" that are library callers, not proxies. *)
  cr_proxion_proxies : int;
  cr_proxion_only : int;  (** Hidden proxies only ProxioN finds. *)
  cr_crush_storage_pairs : int;
  cr_proxion_storage_pairs : int;
}

val run_sanctuary : ?config:Dataset.Generate.config -> unit -> sanctuary
val run_crush : ?config:Dataset.Generate.config -> unit -> crush_cmp
val render_sanctuary : sanctuary -> string
val render_crush : crush_cmp -> string
