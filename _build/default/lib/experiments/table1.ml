module Address = Evm.Address
module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen
module Ast = Minisol.Ast

type cell = Covered | Not_covered

type row = {
  tool : string;
  contract_coverage : cell array;
  collision_coverage : cell array;
}

type scenario = {
  sc_has_source : bool;
  sc_has_tx : bool;
  sc_proxy : Address.t;
  sc_logic : Address.t;
}

let eoa = Address.of_hex "0x0000000000000000000000000000000000011111"

(* One scenario pair per availability quadrant.  The pair carries both a
   function collision (honeypot selectors) and a storage collision
   (Audius-style slot-0 clash). *)
let build_scenarios () =
  let chain = Chain.create () in
  let sources = Hashtbl.create 8 in
  let scenario i ~has_source ~has_tx =
    let logic_ast =
      let base = Patterns.audius_logic () in
      {
        base with
        Ast.c_funcs =
          base.Ast.c_funcs
          @ [ Ast.func "free_ether_withdrawal" [ Ast.Stop ] ];
      }
    in
    let proxy_ast =
      let base = Patterns.audius_proxy () in
      {
        base with
        Ast.c_name = Printf.sprintf "ScenarioProxy%d" i;
        Ast.c_funcs =
          base.Ast.c_funcs @ [ Ast.func "impl_LUsXCWD2AKCc" [ Ast.Stop ] ];
      }
    in
    let logic = Chain.install_contract chain ~runtime:(Codegen.runtime logic_ast) () in
    let proxy = Chain.install_contract chain ~runtime:(Codegen.runtime proxy_ast) () in
    Chain.set_storage_direct chain proxy U256.zero (Address.to_u256 eoa);
    Chain.set_storage_direct chain proxy U256.one (Address.to_u256 logic);
    if has_source then begin
      Hashtbl.replace sources proxy proxy_ast;
      Hashtbl.replace sources logic logic_ast
    end;
    if has_tx then begin
      let input = Hexutil.take 36 (Keccak.digest "t1-probe" ^ String.make 32 '\000') in
      ignore (Chain.call chain ~from:eoa ~to_:proxy ~input ())
    end;
    { sc_has_source = has_source; sc_has_tx = has_tx; sc_proxy = proxy; sc_logic = logic }
  in
  let scenarios =
    [
      scenario 0 ~has_source:true ~has_tx:true;
      scenario 1 ~has_source:true ~has_tx:false;
      scenario 2 ~has_source:false ~has_tx:true;
      scenario 3 ~has_source:false ~has_tx:false;
    ]
  in
  (chain, scenarios, fun addr -> Hashtbl.find_opt sources addr)

let cell_of b = if b then Covered else Not_covered

let quadrant sc =
  match (sc.sc_has_source, sc.sc_has_tx) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> 2
  | false, false -> 3

let proxion_is_proxy host addr =
  Proxion.Proxy_detect.is_proxy (Proxion.Proxy_detect.detect ~host addr)

let run () =
  let chain, scenarios, source = build_scenarios () in
  let host = Chain.host_at_head chain in
  let contract_cov f =
    let cov = Array.make 4 Not_covered in
    List.iter (fun sc -> if f sc then cov.(quadrant sc) <- Covered) scenarios;
    cov
  in
  (* Contract-identification coverage per tool. *)
  let etherscan_cov =
    (* The Etherscan verification tool only exists for verified contracts. *)
    contract_cov (fun sc ->
        sc.sc_has_source && Baselines.Etherscan_like.is_proxy (Chain.code_at chain sc.sc_proxy))
  in
  let uschunt_cov =
    contract_cov (fun sc ->
        match source sc.sc_proxy with
        | Some ast -> Baselines.Uschunt_like.detect_proxy ast
        | None -> false)
  in
  let salehi_cov = contract_cov (fun sc -> Baselines.Salehi_like.is_proxy chain sc.sc_proxy) in
  let crush_cov = contract_cov (fun sc -> Baselines.Crush_like.is_proxy chain sc.sc_proxy) in
  let proxion_cov = contract_cov (fun sc -> proxion_is_proxy host sc.sc_proxy) in
  (* Collision coverage: can the tool check the pair in this availability
     class?  Measured by actually running its detectors on a source-backed
     pair and on a bytecode-only pair. *)
  let with_src = List.find (fun sc -> sc.sc_has_source) scenarios in
  let without_src = List.find (fun sc -> not sc.sc_has_source) scenarios in
  let uschunt_func sc =
    match (source sc.sc_proxy, source sc.sc_logic) with
    | Some p, Some l -> Baselines.Uschunt_like.func_collisions ~proxy:p ~logic:l <> []
    | _ -> false
  in
  let uschunt_storage sc =
    match (source sc.sc_proxy, source sc.sc_logic) with
    | Some p, Some l -> Baselines.Uschunt_like.storage_collisions ~proxy:p ~logic:l <> []
    | _ -> false
  in
  let crush_storage sc =
    Baselines.Crush_like.is_proxy chain sc.sc_proxy
    && Baselines.Crush_like.storage_collisions ~chain ~proxy:sc.sc_proxy
         ~logic:sc.sc_logic
       <> []
  in
  let proxion_func sc =
    let side addr =
      match source addr with
      | Some ast -> Proxion.Func_collision.Source ast
      | None -> Proxion.Func_collision.Bytecode (Chain.code_at chain addr)
    in
    Proxion.Func_collision.has_collision ~proxy:(side sc.sc_proxy) ~logic:(side sc.sc_logic)
  in
  let proxion_storage sc =
    let side addr =
      match source addr with
      | Some ast -> Proxion.Storage_collision.Source ast
      | None -> Proxion.Storage_collision.Bytecode (Chain.code_at chain addr)
    in
    Proxion.Storage_collision.has_collision ~proxy:(side sc.sc_proxy)
      ~logic:(side sc.sc_logic)
  in
  let collision_cov ~func ~storage =
    [|
      cell_of (func with_src);
      cell_of (storage with_src);
      cell_of (func without_src);
      cell_of (storage without_src);
    |]
  in
  let none4 = Array.make 4 Not_covered in
  [
    {
      tool = "EtherScan";
      contract_coverage = etherscan_cov;
      collision_coverage = none4;
    };
    {
      tool = "Slither/USCHunt";
      contract_coverage = uschunt_cov;
      collision_coverage = collision_cov ~func:uschunt_func ~storage:uschunt_storage;
    };
    {
      tool = "Salehi et al.";
      contract_coverage = salehi_cov;
      collision_coverage = none4;
    };
    {
      tool = "CRUSH";
      contract_coverage = crush_cov;
      collision_coverage =
        collision_cov ~func:(fun _ -> false) ~storage:crush_storage;
    };
    {
      tool = "ProxioN (this work)";
      contract_coverage = proxion_cov;
      collision_coverage = collision_cov ~func:proxion_func ~storage:proxion_storage;
    };
  ]

let render rows =
  let mark = function Covered -> "yes" | Not_covered -> "-" in
  Report.table ~title:"Table 1: smart contract and collision coverage"
    ~header:
      [
        "Tool";
        "src+tx";
        "src";
        "tx";
        "hidden";
        "fn(src)";
        "st(src)";
        "fn(byte)";
        "st(byte)";
      ]
    (List.map
       (fun r ->
         r.tool
         :: (Array.to_list r.contract_coverage |> List.map mark)
         @ (Array.to_list r.collision_coverage |> List.map mark))
       rows)
