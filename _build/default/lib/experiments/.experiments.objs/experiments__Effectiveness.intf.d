lib/experiments/effectiveness.mli: Dataset
