lib/experiments/table1.ml: Array Baselines Chain Evm Hashtbl Hexutil Keccak List Minisol Printf Proxion Report String U256
