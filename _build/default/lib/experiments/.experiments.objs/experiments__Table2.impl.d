lib/experiments/table2.ml: Baselines Chain Dataset List Proxion Report
