lib/experiments/landscape.mli: Dataset Proxion Report
