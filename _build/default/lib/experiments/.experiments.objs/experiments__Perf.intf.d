lib/experiments/perf.mli: Dataset
