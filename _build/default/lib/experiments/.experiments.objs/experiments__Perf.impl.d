lib/experiments/perf.ml: Chain Dataset List Minisol Printf Proxion Report Unix
