lib/experiments/multichain.ml: Dataset Hashtbl List Proxion Report
