lib/experiments/multichain.mli: Report
