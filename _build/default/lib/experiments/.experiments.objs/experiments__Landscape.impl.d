lib/experiments/landscape.ml: Array Chain Dataset Evm Hashtbl List Option Printf Proxion Report
