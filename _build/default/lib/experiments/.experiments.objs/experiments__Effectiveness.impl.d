lib/experiments/effectiveness.ml: Baselines Chain Dataset Evm Hashtbl List Proxion Report
