(** Table 2 — collision-detection accuracy on the ground-truth corpus.

    Each tool runs on every labeled pair of {!Dataset.Accuracy}; the
    confusion matrix is scored against the ground truth.  The comparison
    target is the ordering the paper reports: ProxioN beats USCHunt and
    CRUSH on storage collisions (78.2% vs 54.4%) and dominates on function
    collisions (99.5% vs 53.3%), with exactly the failure modes attributed
    in §6.3 (USCHunt's padding false positives, CRUSH's library-pair false
    positives and history gating, ProxioN's emulation-error misses). *)

type matrix = { tp : int; fp : int; tn : int; fn : int }

val accuracy : matrix -> float

type row = { tool : string; kind : string; matrix : matrix }

val run : ?size_factor:int -> unit -> row list
(** Builds the corpus, runs USCHunt, CRUSH, and ProxioN, and scores. *)

val render : row list -> string

val to_json : row list -> Report.Json.t
