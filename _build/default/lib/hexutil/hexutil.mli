(** Hexadecimal and byte-string helpers shared by every layer of the
    repository.  All byte strings are immutable OCaml [string] values; hex
    strings are lowercase and may carry an optional ["0x"] prefix on input. *)

val of_hex : string -> string
(** [of_hex s] decodes a hex string (with or without ["0x"] prefix) into raw
    bytes.  Raises [Invalid_argument] on odd length or non-hex characters. *)

val of_hex_opt : string -> string option
(** Like {!of_hex} but returns [None] instead of raising. *)

val to_hex : ?prefix:bool -> string -> string
(** [to_hex bytes] encodes raw bytes as lowercase hex.  [prefix] (default
    [true]) prepends ["0x"]. *)

val is_hex : string -> bool
(** [is_hex s] is [true] iff [s] (ignoring any ["0x"] prefix) has even length
    and contains only hex digits. *)

val pad_left : int -> char -> string -> string
(** [pad_left n c s] left-pads [s] with [c] to length [n]; if [s] is already
    at least [n] long it is returned unchanged. *)

val pad_right : int -> char -> string -> string
(** Right-padding counterpart of {!pad_left}. *)

val take : int -> string -> string
(** [take n s] is the first [min n (length s)] bytes of [s]. *)

val drop : int -> string -> string
(** [drop n s] is [s] without its first [n] bytes (empty if [n >= length]). *)

val slice : string -> int -> int -> string
(** [slice s pos len] extracts [len] bytes starting at [pos], zero-padding on
    the right when the requested range extends past the end of [s] (EVM
    memory/calldata semantics). *)

val repeat : char -> int -> string
(** [repeat c n] is the string of [n] copies of [c]. *)

val xor : string -> string -> string
(** Byte-wise xor of two equal-length strings.  Raises [Invalid_argument] on
    length mismatch. *)

val byte : string -> int -> int
(** [byte s i] is [Char.code s.[i]]. *)

val chunks : int -> string -> string list
(** [chunks n s] splits [s] into pieces of [n] bytes; the final piece may be
    shorter.  [chunks n ""] is [[]]. *)
