let strip_0x s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    String.sub s 2 (String.length s - 2)
  else s

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Hexutil: invalid hex character %C" c)

let of_hex s =
  let s = strip_0x s in
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hexutil.of_hex: odd-length hex string";
  String.init (n / 2) (fun i ->
      Char.chr ((hex_value s.[2 * i] lsl 4) lor hex_value s.[(2 * i) + 1]))

let of_hex_opt s = match of_hex s with b -> Some b | exception _ -> None

let hex_digits = "0123456789abcdef"

let to_hex ?(prefix = true) bytes =
  let n = String.length bytes in
  let body =
    String.init (2 * n) (fun i ->
        let b = Char.code bytes.[i / 2] in
        hex_digits.[if i mod 2 = 0 then b lsr 4 else b land 0xf])
  in
  if prefix then "0x" ^ body else body

let is_hex s =
  let s = strip_0x s in
  String.length s mod 2 = 0
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

let repeat c n = String.make n c

let pad_left n c s =
  let len = String.length s in
  if len >= n then s else repeat c (n - len) ^ s

let pad_right n c s =
  let len = String.length s in
  if len >= n then s else s ^ repeat c (n - len)

let take n s =
  let n = min n (String.length s) in
  if n <= 0 then "" else String.sub s 0 n

let drop n s =
  let len = String.length s in
  if n >= len then "" else String.sub s n (len - n)

let slice s pos len =
  if len <= 0 then ""
  else
    String.init len (fun i ->
        let j = pos + i in
        if j >= 0 && j < String.length s then s.[j] else '\000')

let xor a b =
  if String.length a <> String.length b then
    invalid_arg "Hexutil.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let byte s i = Char.code s.[i]

let chunks n s =
  if n <= 0 then invalid_arg "Hexutil.chunks: non-positive chunk size";
  let len = String.length s in
  let rec loop pos acc =
    if pos >= len then List.rev acc
    else
      let sz = min n (len - pos) in
      loop (pos + sz) (String.sub s pos sz :: acc)
  in
  loop 0 []
