lib/minisol/ast.mli: Evm U256
