lib/minisol/codegen.ml: Ast Evm Hashtbl Keccak Layout List Printf String U256
