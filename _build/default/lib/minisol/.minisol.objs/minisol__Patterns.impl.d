lib/minisol/patterns.ml: Ast Evm Hexutil Keccak String U256
