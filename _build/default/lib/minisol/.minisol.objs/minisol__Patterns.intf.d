lib/minisol/patterns.mli: Ast Evm U256
