lib/minisol/evalref.ml: Array Ast Evm Hashtbl Keccak Layout List U256
