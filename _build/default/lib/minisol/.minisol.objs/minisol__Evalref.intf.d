lib/minisol/evalref.mli: Ast Evm U256
