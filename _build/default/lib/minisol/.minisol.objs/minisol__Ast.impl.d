lib/minisol/ast.ml: Evm Keccak List Printf String U256
