lib/minisol/pretty.ml: Ast Buffer Evm List Printf String U256
