lib/minisol/layout.ml: Ast Format List
