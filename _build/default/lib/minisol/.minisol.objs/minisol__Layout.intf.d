lib/minisol/layout.mli: Ast Format
