lib/minisol/codegen.mli: Ast
