lib/minisol/pretty.mli: Ast
