open Ast

let rec ty_str = function
  | T_uint bits -> Printf.sprintf "uint%d" bits
  | T_int bits -> Printf.sprintf "int%d" bits
  | T_bool -> "bool"
  | T_address -> "address"
  | T_bytes n -> Printf.sprintf "bytes%d" n
  | T_mapping (k, v) -> Printf.sprintf "mapping(%s => %s)" (ty_str k) (ty_str v)

let rec expr = function
  | Const v -> if U256.lt v (U256.of_int 100000) then U256.to_decimal v else U256.to_hex v
  | Const_addr a -> Evm.Address.to_hex a
  | Param i -> Printf.sprintf "arg%d" i
  | Load name -> name
  | Map_load (name, key) -> Printf.sprintf "%s[%s]" name (expr key)
  | Load_slot slot -> Printf.sprintf "sload(%s)" (U256.to_hex slot)
  | Cd_selector -> "msg.sig"
  | Caller -> "msg.sender"
  | Callvalue -> "msg.value"
  | Timestamp -> "block.timestamp"
  | Blocknumber -> "block.number"
  | Self -> "address(this)"
  | Selfbalance -> "address(this).balance"
  | Local name -> name
  | Not e -> Printf.sprintf "!(%s)" (expr e)
  | Bin (op, a, b) ->
      let sym =
        match op with
        | Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "/"
        | And -> "&&"
        | Or -> "||"
        | Xor -> "^"
        | Eq -> "=="
        | Lt -> "<"
        | Gt -> ">"
      in
      Printf.sprintf "(%s %s %s)" (expr a) sym (expr b)

let target_str = function
  | To_var name -> name
  | To_slot slot -> Printf.sprintf "sload(%s)" (U256.to_hex slot)
  | To_fixed a -> Evm.Address.to_hex a
  | To_facet name -> Printf.sprintf "%s[msg.sig]" name
  | To_beacon slot ->
      Printf.sprintf "IBeacon(sload(%s)).implementation()" (U256.to_hex slot)

let rec stmt ?(indent = 2) s =
  let pad = String.make indent ' ' in
  match s with
  | Store (name, e) -> Printf.sprintf "%s%s = %s;" pad name (expr e)
  | Map_store (name, k, v) ->
      Printf.sprintf "%s%s[%s] = %s;" pad name (expr k) (expr v)
  | Store_slot (slot, e) ->
      Printf.sprintf "%ssstore(%s, %s);" pad (U256.to_hex slot) (expr e)
  | Require e -> Printf.sprintf "%srequire(%s);" pad (expr e)
  | Return_value e -> Printf.sprintf "%sreturn %s;" pad (expr e)
  | Stop -> Printf.sprintf "%sreturn;" pad
  | Revert -> Printf.sprintf "%srevert();" pad
  | Transfer (to_, amount) ->
      Printf.sprintf "%spayable(%s).transfer(%s);" pad (expr to_) (expr amount)
  | Call_sig (target, signature, args) ->
      Printf.sprintf "%s%s.call(abi.encodeWithSignature(\"%s\"%s));" pad
        (expr target) signature
        (String.concat "" (List.map (fun a -> ", " ^ expr a) args))
  | Delegate_sig (target, signature, args) ->
      Printf.sprintf "%s%s.delegatecall(abi.encodeWithSignature(\"%s\"%s));" pad
        (expr target) signature
        (String.concat "" (List.map (fun a -> ", " ^ expr a) args))
  | Emit (signature, args) ->
      Printf.sprintf "%semit %s(%s);" pad
        (match String.index_opt signature '(' with
        | Some i -> String.sub signature 0 i
        | None -> signature)
        (String.concat ", " (List.map expr args))
  | Delegate_forward target ->
      Printf.sprintf
        "%s(bool ok, bytes memory ret) = %s.delegatecall(msg.data);\n%sif (!ok) \
         revert(ret); return ret;"
        pad (target_str target) pad
  | Let (name, e) -> Printf.sprintf "%suint256 %s = %s;" pad name (expr e)
  | While (cond, body_) ->
      Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (expr cond)
        (String.concat "\n" (List.map (stmt ~indent:(indent + 2)) body_))
        pad
  | If (cond, then_, else_) ->
      let body b =
        String.concat "\n" (List.map (stmt ~indent:(indent + 2)) b)
      in
      if else_ = [] then
        Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr cond) (body then_) pad
      else
        Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr cond)
          (body then_) pad (body else_) pad

let mutability_str = function
  | View -> " view"
  | Payable -> " payable"
  | Nonpayable -> ""

let contract (c : contract) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "contract %s {\n" c.c_name);
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %s private %s;\n" (ty_str v.v_ty) v.v_name))
    c.c_vars;
  if c.c_vars <> [] then Buffer.add_char buf '\n';
  if c.c_ctor <> [] then begin
    Buffer.add_string buf "  constructor() {\n";
    List.iter
      (fun s -> Buffer.add_string buf (stmt ~indent:4 s ^ "\n"))
      c.c_ctor;
    Buffer.add_string buf "  }\n\n"
  end;
  List.iter
    (fun f ->
      let params =
        String.concat ", "
          (List.mapi
             (fun i p -> Printf.sprintf "%s arg%d" (ty_str p.p_ty) i)
             f.f_params)
      in
      let returns =
        match f.f_returns with
        | Some t -> Printf.sprintf " returns (%s)" (ty_str t)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  function %s(%s) public%s%s {\n" f.f_name params
           (mutability_str f.f_mutability) returns);
      List.iter
        (fun s -> Buffer.add_string buf (stmt ~indent:4 s ^ "\n"))
        f.f_body;
      Buffer.add_string buf "  }\n\n")
    c.c_funcs;
  (match c.c_fallback with
  | Some body ->
      Buffer.add_string buf "  fallback(bytes calldata) external payable {\n";
      List.iter (fun s -> Buffer.add_string buf (stmt ~indent:4 s ^ "\n")) body;
      Buffer.add_string buf "  }\n"
  | None -> ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf
