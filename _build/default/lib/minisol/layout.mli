(** Solidity storage-layout computation.

    Variables occupy slots in declaration order; consecutive value-typed
    variables pack into one 32-byte slot from the least-significant byte up
    when they fit (§2.3 of the paper works an example: an [address] and two
    [bool]s).  Mappings always claim a fresh whole slot.  Both the storage
    collision detector and the code generator consume this layout, so the
    bytecode and the "source" agree by construction. *)

type entry = {
  e_var : Ast.var;
  e_slot : int;
  e_offset : int;  (** Byte offset from the least-significant end. *)
  e_size : int;  (** Packed width in bytes. *)
}

val of_contract : Ast.contract -> entry list
(** Layout in declaration order. *)

val slot_count : entry list -> int
(** Number of slots used (highest slot + 1; 0 for no variables). *)

val find : entry list -> string -> entry
(** Entry for a variable name.  Raises [Not_found]. *)

val entries_at_slot : entry list -> int -> entry list
(** All variables overlapping a given slot. *)

val pp_entry : Format.formatter -> entry -> unit
