(** A reference interpreter for Minisol contracts, independent of the
    bytecode path.

    Storage semantics (slot packing, read-modify-write, mapping-slot
    hashing) are evaluated directly over a word map using {!Layout}, so a
    differential test can call the same function through this evaluator
    and through {!Codegen} + the EVM and require identical results and
    identical final storage.  Calls that leave the contract (transfers,
    external calls, delegatecalls) are out of scope and raise
    {!Unsupported} — the differential harness covers the self-contained
    semantics, which is where the compiler's packing/masking bugs would
    hide. *)

exception Unsupported of string

type state
(** Mutable storage: slot word -> value word. *)

val create : unit -> state
val get_slot : state -> U256.t -> U256.t
val set_slot : state -> U256.t -> U256.t -> unit
val slots : state -> (U256.t * U256.t) list
(** Non-zero slots, unordered. *)

type env = {
  e_caller : Evm.Address.t;
  e_value : U256.t;
  e_timestamp : int;
  e_number : int;
  e_self : Evm.Address.t;
}

val default_env : env

type outcome =
  | Returned of U256.t
  | Stopped
  | Reverted

val call :
  ?env:env ->
  state ->
  Ast.contract ->
  signature:string ->
  args:U256.t list ->
  outcome
(** Execute the function with the given canonical signature.  Unknown
    signatures evaluate the fallback ([Reverted] when there is none).
    Raises [Unsupported] on external-call statements and [Invalid_argument]
    on missing arguments. *)

val run_ctor : ?env:env -> state -> Ast.contract -> unit
(** Execute the constructor statements. *)
