(** Solidity-flavoured pretty-printing of Minisol contracts.

    Renders the AST as readable contract source — what "verified source on
    Etherscan" corresponds to in this reproduction.  The output is
    illustrative Solidity (it round-trips concepts, not the grammar): good
    for examples, reports, and eyeballing the injected vulnerabilities. *)

val expr : Ast.expr -> string
val stmt : ?indent:int -> Ast.stmt -> string
val contract : Ast.contract -> string
(** Full contract rendering with storage variables, constructor, functions
    and fallback. *)
