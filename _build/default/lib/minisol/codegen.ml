module Asm = Evm.Asm
module Op = Evm.Opcode

let mask_bytes n = U256.pred (U256.shift_left U256.one (8 * n))

type env = {
  layout : Layout.entry list;
  params : Ast.param list;
  fresh : unit -> string;
  locals : (string, int) Hashtbl.t;  (* name -> memory offset *)
}

let make_fresh () =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "L%d" !counter

let locals_base = 0x120

let make_env ?(fresh = make_fresh ()) (c : Ast.contract) (params : Ast.param list) =
  { layout = Layout.of_contract c; params; fresh; locals = Hashtbl.create 4 }

let local_offset env name =
  match Hashtbl.find_opt env.locals name with
  | Some off -> off
  | None ->
      let off = locals_base + (32 * Hashtbl.length env.locals) in
      Hashtbl.replace env.locals name off;
      off

(* Mask a stack-top value down to a type's width. *)
let mask_to_type ty =
  let size = Ast.type_size ty in
  if size >= 32 then [] else [ Asm.Push_u256 (mask_bytes size); Asm.Op Op.AND ]

(* Read a storage variable onto the stack (SLOAD + shift + mask). *)
let load_var env name =
  let e = Layout.find env.layout name in
  Asm.concat
    [
      [ Asm.Push_int e.Layout.e_slot; Asm.Op Op.SLOAD ];
      (if e.Layout.e_offset > 0 then
         [ Asm.Push_int (8 * e.Layout.e_offset); Asm.Op Op.SHR ]
       else []);
      (if e.Layout.e_size < 32 then
         [ Asm.Push_u256 (mask_bytes e.Layout.e_size); Asm.Op Op.AND ]
       else []);
    ]

(* Store the stack top into a storage variable (read-modify-write for packed
   variables, plain SSTORE for full-slot ones). *)
let store_var env name =
  let e = Layout.find env.layout name in
  if e.Layout.e_size = 32 then
    [ Asm.Push_int e.Layout.e_slot; Asm.Op Op.SSTORE ]
  else begin
    let mask = mask_bytes e.Layout.e_size in
    let shifted_mask = U256.shift_left mask (8 * e.Layout.e_offset) in
    Asm.concat
      [
        [ Asm.Push_u256 mask; Asm.Op Op.AND ];
        (if e.Layout.e_offset > 0 then
           [ Asm.Push_int (8 * e.Layout.e_offset); Asm.Op Op.SHL ]
         else []);
        [
          Asm.Push_int e.Layout.e_slot;
          Asm.Op Op.SLOAD;
          Asm.Push_u256 (U256.lognot shifted_mask);
          Asm.Op Op.AND;
          Asm.Op Op.OR;
          Asm.Push_int e.Layout.e_slot;
          Asm.Op Op.SSTORE;
        ];
      ]
  end

(* Mapping slot: keccak256(key ++ declaration_slot), solc's derivation. *)
let mapping_slot env name key_items =
  let e = Layout.find env.layout name in
  Asm.concat
    [
      key_items;
      [ Asm.Push_int 0; Asm.Op Op.MSTORE ];
      [ Asm.Push_int e.Layout.e_slot; Asm.Push_int 0x20; Asm.Op Op.MSTORE ];
      [ Asm.Push_int 0x40; Asm.Push_int 0; Asm.Op Op.KECCAK256 ];
    ]

let binop_items = function
  | Ast.Add -> [ Asm.Op Op.ADD ]
  | Ast.Sub -> [ Asm.Op Op.SUB ]
  | Ast.Mul -> [ Asm.Op Op.MUL ]
  | Ast.Div -> [ Asm.Op Op.DIV ]
  | Ast.And -> [ Asm.Op Op.AND ]
  | Ast.Or -> [ Asm.Op Op.OR ]
  | Ast.Xor -> [ Asm.Op Op.XOR ]
  | Ast.Eq -> [ Asm.Op Op.EQ ]
  | Ast.Lt -> [ Asm.Op Op.LT ]
  | Ast.Gt -> [ Asm.Op Op.GT ]

let rec compile_expr env (e : Ast.expr) =
  match e with
  | Ast.Const v -> [ Asm.Push_u256 v ]
  | Ast.Const_addr a -> [ Asm.Push a ]
  | Ast.Param i ->
      let p =
        try List.nth env.params i
        with _ -> invalid_arg "Codegen: parameter index out of range"
      in
      Asm.concat
        [
          [ Asm.Push_int (4 + (32 * i)); Asm.Op Op.CALLDATALOAD ];
          mask_to_type p.Ast.p_ty;
        ]
  | Ast.Load name -> load_var env name
  | Ast.Map_load (name, key) ->
      Asm.concat
        [ mapping_slot env name (compile_expr env key); [ Asm.Op Op.SLOAD ] ]
  | Ast.Load_slot slot -> [ Asm.Push_u256 slot; Asm.Op Op.SLOAD ]
  | Ast.Cd_selector ->
      [
        Asm.Push_int 0;
        Asm.Op Op.CALLDATALOAD;
        Asm.Push_int 0xe0;
        Asm.Op Op.SHR;
      ]
  | Ast.Caller -> [ Asm.Op Op.CALLER ]
  | Ast.Callvalue -> [ Asm.Op Op.CALLVALUE ]
  | Ast.Timestamp -> [ Asm.Op Op.TIMESTAMP ]
  | Ast.Blocknumber -> [ Asm.Op Op.NUMBER ]
  | Ast.Self -> [ Asm.Op Op.ADDRESS ]
  | Ast.Selfbalance -> [ Asm.Op Op.SELFBALANCE ]
  | Ast.Not e -> Asm.concat [ compile_expr env e; [ Asm.Op Op.ISZERO ] ]
  | Ast.Bin (op, left, right) ->
      (* Left operand must end on top of the stack. *)
      Asm.concat [ compile_expr env right; compile_expr env left; binop_items op ]
  | Ast.Local name ->
      [ Asm.Push_int (local_offset env name); Asm.Op Op.MLOAD ]

(* Build calldata [selector ++ args] in memory at 0 and leave its length.
   The selector lands via PUSH4 + SHL, i.e. a PUSH4 outside any dispatcher
   pattern. *)
let build_sig_calldata env signature args =
  let n = List.length args in
  Asm.concat
    [
      [
        Asm.Push (Keccak.selector signature);
        Asm.Push_int 0xe0;
        Asm.Op Op.SHL;
        Asm.Push_int 0;
        Asm.Op Op.MSTORE;
      ];
      Asm.concat
        (List.mapi
           (fun i arg ->
             Asm.concat
               [
                 compile_expr env arg;
                 [ Asm.Push_int (4 + (32 * i)); Asm.Op Op.MSTORE ];
               ])
           args);
      [ Asm.Push_int (4 + (32 * n)) ];
    ]

let forward_target_items env = function
  | Ast.To_var name -> load_var env name
  | Ast.To_slot slot ->
      [
        Asm.Push_u256 slot;
        Asm.Op Op.SLOAD;
        Asm.Push_u256 (mask_bytes 20);
        Asm.Op Op.AND;
      ]
  | Ast.To_fixed addr -> [ Asm.Push addr ]
  | Ast.To_facet name ->
      Asm.concat
        [
          mapping_slot env name (compile_expr env Ast.Cd_selector);
          [ Asm.Op Op.SLOAD; Asm.Push_u256 (mask_bytes 20); Asm.Op Op.AND ];
        ]
  | Ast.To_beacon slot ->
      (* staticcall(gas, beacon, 0, 4, 0, 32) with implementation()'s
         selector in scratch memory, then read the returned address. *)
      Asm.concat
        [
          [
            Asm.Push (Keccak.selector "implementation()");
            Asm.Push_int 0xe0;
            Asm.Op Op.SHL;
            Asm.Push_int 0;
            Asm.Op Op.MSTORE;
          ];
          [ Asm.Push_int 0x20; Asm.Push_int 0; Asm.Push_int 4; Asm.Push_int 0 ];
          [
            Asm.Push_u256 slot;
            Asm.Op Op.SLOAD;
            Asm.Push_u256 (mask_bytes 20);
            Asm.Op Op.AND;
          ];
          [ Asm.Op Op.GAS; Asm.Op Op.STATICCALL; Asm.Op Op.POP ];
          [
            Asm.Push_int 0;
            Asm.Op Op.MLOAD;
            Asm.Push_u256 (mask_bytes 20);
            Asm.Op Op.AND;
          ];
        ]

let rec compile_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Store (name, e) -> Asm.concat [ compile_expr env e; store_var env name ]
  | Ast.Map_store (name, key, value) ->
      (* Compute value, then the mapping slot, then SSTORE. *)
      Asm.concat
        [
          compile_expr env value;
          mapping_slot env name (compile_expr env key);
          [ Asm.Op Op.SSTORE ];
        ]
  | Ast.Store_slot (slot, e) ->
      Asm.concat
        [ compile_expr env e; [ Asm.Push_u256 slot; Asm.Op Op.SSTORE ] ]
  | Ast.Require e ->
      let ok = env.fresh () in
      Asm.concat
        [
          compile_expr env e;
          [ Asm.Push_label ok; Asm.Op Op.JUMPI ];
          [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Op.REVERT ];
          [ Asm.Jumpdest ok ];
        ]
  | Ast.Return_value e ->
      Asm.concat
        [
          compile_expr env e;
          [
            Asm.Push_int 0;
            Asm.Op Op.MSTORE;
            Asm.Push_int 0x20;
            Asm.Push_int 0;
            Asm.Op Op.RETURN;
          ];
        ]
  | Ast.Stop -> [ Asm.Op Op.STOP ]
  | Ast.Revert -> [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Op.REVERT ]
  | Ast.Transfer (to_, amount) ->
      let ok = env.fresh () in
      Asm.concat
        [
          (* call(gas, to, amount, 0, 0, 0, 0) *)
          [ Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0 ];
          compile_expr env amount;
          compile_expr env to_;
          [ Asm.Op Op.GAS; Asm.Op Op.CALL ];
          [ Asm.Push_label ok; Asm.Op Op.JUMPI ];
          [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Op.REVERT ];
          [ Asm.Jumpdest ok ];
        ]
  | Ast.Call_sig (target, signature, args) ->
      Asm.concat
        [
          build_sig_calldata env signature args;
          (* stack: [len]; call(gas, target, 0, 0, len, 0, 0) *)
          [ Asm.Push_int 0; Asm.Push_int 0 ];
          [ Asm.Op (Op.SWAP 2) ];
          (* -> [len, 0, 0] with len as argsLen *)
          [ Asm.Push_int 0 ];
          (* argsOff *)
          [ Asm.Push_int 0 ];
          (* value *)
          compile_expr env target;
          [ Asm.Op Op.GAS; Asm.Op Op.CALL; Asm.Op Op.POP ];
        ]
  | Ast.Delegate_sig (target, signature, args) ->
      Asm.concat
        [
          build_sig_calldata env signature args;
          (* stack: [len]; delegatecall(gas, target, 0, len, 0, 0) *)
          [ Asm.Push_int 0; Asm.Push_int 0 ];
          [ Asm.Op (Op.SWAP 2) ];
          [ Asm.Push_int 0 ];
          compile_expr env target;
          [ Asm.Op Op.GAS; Asm.Op Op.DELEGATECALL; Asm.Op Op.POP ];
        ]
  | Ast.Delegate_forward target ->
      let ok = env.fresh () in
      Asm.concat
        [
          (* calldatacopy(0x40, 0, calldatasize): the copy lives above the
             0x00-0x3f scratch words so that slot-hash computations (facet
             lookups) cannot clobber the forwarded payload. *)
          [
            Asm.Op Op.CALLDATASIZE;
            Asm.Push_int 0;
            Asm.Push_int 0x40;
            Asm.Op Op.CALLDATACOPY;
          ];
          (* delegatecall(gas, target, 0x40, calldatasize, 0, 0) *)
          [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Op.CALLDATASIZE; Asm.Push_int 0x40 ];
          forward_target_items env target;
          [ Asm.Op Op.GAS; Asm.Op Op.DELEGATECALL ];
          (* returndatacopy(0, 0, returndatasize) *)
          [
            Asm.Op Op.RETURNDATASIZE;
            Asm.Push_int 0;
            Asm.Push_int 0;
            Asm.Op Op.RETURNDATACOPY;
          ];
          [ Asm.Push_label ok; Asm.Op Op.JUMPI ];
          [ Asm.Op Op.RETURNDATASIZE; Asm.Push_int 0; Asm.Op Op.REVERT ];
          [ Asm.Jumpdest ok ];
          [ Asm.Op Op.RETURNDATASIZE; Asm.Push_int 0; Asm.Op Op.RETURN ];
        ]
  | Ast.Emit (signature, args) ->
      let n = List.length args in
      Asm.concat
        [
          (* Pack arguments into memory at 0x00. *)
          Asm.concat
            (List.mapi
               (fun i arg ->
                 Asm.concat
                   [
                     compile_expr env arg;
                     [ Asm.Push_int (32 * i); Asm.Op Op.MSTORE ];
                   ])
               args);
          (* log1(offset=0, size=32n, topic=keccak(signature)) *)
          [
            Asm.Push (Keccak.digest signature);
            Asm.Push_int (32 * n);
            Asm.Push_int 0;
            Asm.Op (Op.LOG 1);
          ];
        ]
  | Ast.Let (name, e) ->
      Asm.concat
        [
          compile_expr env e;
          [ Asm.Push_int (local_offset env name); Asm.Op Op.MSTORE ];
        ]
  | Ast.While (cond, body) ->
      let start = env.fresh () in
      let stop = env.fresh () in
      Asm.concat
        [
          [ Asm.Jumpdest start ];
          compile_expr env cond;
          [ Asm.Op Op.ISZERO; Asm.Push_label stop; Asm.Op Op.JUMPI ];
          compile_stmts env body;
          [ Asm.Push_label start; Asm.Op Op.JUMP ];
          [ Asm.Jumpdest stop ];
        ]
  | Ast.If (cond, then_, else_) ->
      let then_label = env.fresh () in
      let end_label = env.fresh () in
      Asm.concat
        [
          compile_expr env cond;
          [ Asm.Push_label then_label; Asm.Op Op.JUMPI ];
          compile_stmts env else_;
          [ Asm.Push_label end_label; Asm.Op Op.JUMP ];
          [ Asm.Jumpdest then_label ];
          compile_stmts env then_;
          [ Asm.Jumpdest end_label ];
        ]

and compile_stmts env stmts = Asm.concat (List.map (compile_stmt env) stmts)

let is_terminated stmts =
  match List.rev stmts with
  | (Ast.Return_value _ | Ast.Stop | Ast.Revert | Ast.Delegate_forward _) :: _ ->
      true
  | _ -> false

let compile_body env stmts =
  Asm.concat
    [ compile_stmts env stmts; (if is_terminated stmts then [] else [ Asm.Op Op.STOP ]) ]

let nonpayable_guard env =
  let ok = env.fresh () in
  [
    Asm.Op Op.CALLVALUE;
    Asm.Op Op.ISZERO;
    Asm.Push_label ok;
    Asm.Op Op.JUMPI;
    Asm.Push_int 0;
    Asm.Push_int 0;
    Asm.Op Op.REVERT;
    Asm.Jumpdest ok;
  ]

let runtime_items (c : Ast.contract) =
  let fallback_body =
    match c.Ast.c_fallback with
    | Some body -> body
    | None -> [ Ast.Revert ]
  in
  let fresh = make_fresh () in
  match c.Ast.c_funcs with
  | [] ->
      (* Function-less contract: the whole runtime is the fallback, without
         preamble or dispatcher (the minimal-proxy shape). *)
      let env = make_env ~fresh c [] in
      compile_body env fallback_body
  | funcs ->
      let preamble =
        [ Asm.Push_int 0x80; Asm.Push_int 0x40; Asm.Op Op.MSTORE ]
      in
      let guard_short_calldata =
        [
          Asm.Push_int 4;
          Asm.Op Op.CALLDATASIZE;
          Asm.Op Op.LT;
          Asm.Push_label "fallback";
          Asm.Op Op.JUMPI;
        ]
      in
      let load_selector =
        [
          Asm.Push_int 0;
          Asm.Op Op.CALLDATALOAD;
          Asm.Push_int 0xe0;
          Asm.Op Op.SHR;
        ]
      in
      let fn_label i = Printf.sprintf "fn%d" i in
      let dispatcher =
        Asm.concat
          (List.mapi
             (fun i f ->
               [
                 Asm.Op (Op.DUP 1);
                 Asm.Push (Ast.selector f);
                 Asm.Op Op.EQ;
                 Asm.Push_label (fn_label i);
                 Asm.Op Op.JUMPI;
               ])
             funcs)
        @ [ Asm.Push_label "fallback"; Asm.Op Op.JUMP ]
      in
      let bodies =
        Asm.concat
          (List.mapi
             (fun i f ->
               let env = make_env ~fresh c f.Ast.f_params in
               Asm.concat
                 [
                   [ Asm.Jumpdest (fn_label i); Asm.Op Op.POP ];
                   (match f.Ast.f_mutability with
                   | Ast.Payable | Ast.View -> []
                   | Ast.Nonpayable -> nonpayable_guard env);
                   compile_body env f.Ast.f_body;
                 ])
             funcs)
      in
      let fallback =
        let env = make_env ~fresh c [] in
        Asm.concat
          [ [ Asm.Jumpdest "fallback" ]; compile_body env fallback_body ]
      in
      Asm.concat
        [ preamble; guard_short_calldata; load_selector; dispatcher; bodies; fallback ]

let runtime c = Asm.assemble (runtime_items c)

let init_code (c : Ast.contract) =
  let runtime_bytes = runtime c in
  let env = make_env c [] in
  let ctor = compile_stmts env c.Ast.c_ctor in
  Asm.assemble
    (Asm.concat
       [
         ctor;
         [
           (* codecopy(0, runtime_start, len); return(0, len) *)
           Asm.Push_int (String.length runtime_bytes);
           Asm.Push_label "runtime_start";
           Asm.Push_int 0;
           Asm.Op Op.CODECOPY;
           Asm.Push_int (String.length runtime_bytes);
           Asm.Push_int 0;
           Asm.Op Op.RETURN;
           Asm.Label "runtime_start";
           Asm.Raw runtime_bytes;
         ];
       ])
