(** Compilation of Minisol contracts to EVM bytecode.

    The generated runtime follows solc's idioms, because ProxioN's
    bytecode-level heuristics key on them (§3.1, §4.2, §5.1):

    - free-memory-pointer preamble ([PUSH1 0x80 PUSH1 0x40 MSTORE]);
    - a selector dispatcher of [DUP1 PUSH4 <sel> EQ PUSH2 <dest> JUMPI]
      comparisons after [CALLDATALOAD; SHR 0xe0], falling through to the
      fallback block;
    - packed storage access via SLOAD / SHR / AND masks derived from
      {!Layout};
    - calldata-forwarding fallbacks built from CALLDATACOPY, DELEGATECALL
      and RETURNDATACOPY, returning or reverting with the callee's data;
    - external calls that embed selectors as [PUSH4 <sel> PUSH1 0xe0 SHL]
      {e outside} any dispatcher comparison — the arbitrary-data-after-PUSH4
      hazard that defeats naive selector harvesting.

    Contracts with functions get the dispatcher; function-less contracts
    with a fallback (minimal proxies) compile to just the fallback body. *)

val runtime : Ast.contract -> string
(** Runtime (deployed) bytecode. *)

val init_code : Ast.contract -> string
(** Creation bytecode: runs the constructor statements, then deploys
    {!runtime} via CODECOPY/RETURN. *)
