(** The abstract syntax of Minisol, the miniature contract language that
    stands in for Solidity in this reproduction.

    A Minisol contract plays two roles at once: it is the "source code" the
    source-based analyses (Slither/USCHunt substitutes) inspect, and it is
    the input of {!Codegen}, which compiles it to EVM bytecode with the same
    idioms solc produces (function-selector dispatcher, packed storage,
    delegate-calling fallback).  The collision analyses of the paper are
    therefore exercised on both representations of the same contract. *)

(** Solidity elementary types plus mappings. *)
type ty =
  | T_uint of int  (** [T_uint bits] with bits a multiple of 8, 8-256. *)
  | T_int of int
  | T_bool
  | T_address
  | T_bytes of int  (** [bytesN], 1-32. *)
  | T_mapping of ty * ty

val type_size : ty -> int
(** Packed byte width of a value type; 32 for mappings (their slot). *)

val canonical_type : ty -> string
(** Canonical ABI name, e.g. ["uint256"], ["bytes4"]. *)

(** A storage variable declaration. *)
type var = { v_name : string; v_ty : ty }

type mutability = View | Nonpayable | Payable

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Eq
  | Lt
  | Gt

type expr =
  | Const of U256.t
  | Const_addr of Evm.Address.t
  | Param of int  (** [Param i]: the [i]-th (static) function argument. *)
  | Load of string  (** Read a storage variable by name. *)
  | Map_load of string * expr  (** Read [mapping_var[key]]. *)
  | Load_slot of U256.t  (** Read a raw slot (EIP-1967-style constants). *)
  | Cd_selector
      (** The 4-byte selector of the incoming calldata, as a word
          ([calldataload(0) >> 224]). *)
  | Caller
  | Callvalue
  | Timestamp
  | Blocknumber
  | Self  (** [address(this)]. *)
  | Selfbalance
  | Not of expr  (** Logical negation (ISZERO). *)
  | Bin of binop * expr * expr
  | Local of string  (** Read a local variable (see {!stmt} [Let]). *)

type stmt =
  | Store of string * expr  (** [var = expr]. *)
  | Map_store of string * expr * expr  (** [mapping_var[key] = expr]. *)
  | Store_slot of U256.t * expr  (** Raw-slot write. *)
  | Require of expr  (** Revert unless the expression is non-zero. *)
  | Return_value of expr  (** Return one ABI word. *)
  | Stop  (** Return with no data. *)
  | Revert
  | Transfer of expr * expr  (** [to.transfer(amount)]: CALL with value. *)
  | Call_sig of expr * string * expr list
      (** [target.call(abi.encodeWithSignature(sig, args))]. *)
  | Delegate_sig of expr * string * expr list
      (** [target.delegatecall(abi.encodeWithSignature(sig, args))] — the
          shape of Listing 1's malicious body. *)
  | Delegate_forward of forward_target
      (** The proxy-fallback idiom: forward the full calldata via
          delegatecall and bubble the result up. *)
  | Emit of string * expr list
      (** [Emit (signature, args)]: a LOG1 whose first topic is the keccak
          hash of the event signature, Solidity-style; arguments are
          ABI-packed into the data payload. *)
  | Let of string * expr
      (** Declare-or-assign a function-local word variable (memory-backed
          in compiled code). *)
  | While of expr * stmt list
      (** Loop while the condition is non-zero. *)
  | If of expr * stmt list * stmt list

(** Where a forwarding fallback finds its logic address. *)
and forward_target =
  | To_var of string  (** A named storage variable. *)
  | To_slot of U256.t  (** A raw slot (EIP-1967 / EIP-1822). *)
  | To_fixed of Evm.Address.t  (** Hard-coded in the bytecode (EIP-1167). *)
  | To_facet of string
      (** A mapping variable keyed by the calldata selector — the diamond
          (EIP-2535) shape whose probes ProxioN cannot satisfy (§8.1). *)
  | To_beacon of U256.t
      (** A beacon: the slot holds a beacon contract whose
          [implementation()] is static-called for the logic address — the
          EIP-1967 beacon variant. *)

type param = { p_name : string; p_ty : ty }

type func = {
  f_name : string;
  f_params : param list;
  f_returns : ty option;
  f_mutability : mutability;
  f_body : stmt list;
}

type contract = {
  c_name : string;
  c_vars : var list;  (** Storage variables in declaration order. *)
  c_funcs : func list;
  c_fallback : stmt list option;
      (** Fallback body; [None] compiles to a reverting fallback. *)
  c_ctor : stmt list;
      (** Constructor statements (run in init code; no calldata access). *)
}

val signature : func -> string
(** Canonical signature, e.g. ["transfer(address,uint256)"]. *)

val selector : func -> string
(** 4-byte selector of {!signature}. *)

val signatures : contract -> string list
(** All function signatures, in declaration order. *)

val selectors : contract -> string list
(** All 4-byte selectors, in declaration order. *)

val find_var : contract -> string -> var
(** Raises [Not_found]. *)

val func : ?mutability:mutability -> ?params:param list -> ?returns:ty ->
  string -> stmt list -> func
(** Convenience constructor; default nonpayable, no params, no return. *)

val contract :
  ?vars:var list ->
  ?funcs:func list ->
  ?fallback:stmt list option ->
  ?ctor:stmt list ->
  string ->
  contract
