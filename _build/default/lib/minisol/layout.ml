type entry = {
  e_var : Ast.var;
  e_slot : int;
  e_offset : int;
  e_size : int;
}

let of_contract (c : Ast.contract) =
  let place (slot, offset, acc) (v : Ast.var) =
    let size = Ast.type_size v.Ast.v_ty in
    match v.Ast.v_ty with
    | Ast.T_mapping _ ->
        (* Mappings start and fully occupy a fresh slot. *)
        let slot = if offset > 0 then slot + 1 else slot in
        let entry = { e_var = v; e_slot = slot; e_offset = 0; e_size = 32 } in
        (slot + 1, 0, entry :: acc)
    | _ ->
        let slot, offset =
          if offset + size > 32 then (slot + 1, 0) else (slot, offset)
        in
        let entry = { e_var = v; e_slot = slot; e_offset = offset; e_size = size } in
        let offset = offset + size in
        if offset = 32 then (slot + 1, 0, entry :: acc)
        else (slot, offset, entry :: acc)
  in
  let _, _, acc = List.fold_left place (0, 0, []) c.Ast.c_vars in
  List.rev acc

let slot_count entries =
  List.fold_left (fun m e -> max m (e.e_slot + 1)) 0 entries

let find entries name =
  match List.find_opt (fun e -> e.e_var.Ast.v_name = name) entries with
  | Some e -> e
  | None -> raise Not_found

let entries_at_slot entries slot = List.filter (fun e -> e.e_slot = slot) entries

let pp_entry fmt e =
  Format.fprintf fmt "%s: slot %d, offset %d, %d bytes"
    e.e_var.Ast.v_name e.e_slot e.e_offset e.e_size
