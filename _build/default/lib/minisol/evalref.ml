exception Unsupported of string

type state = { mutable words : U256.t U256.Map.t }

let create () = { words = U256.Map.empty }

let get_slot st slot =
  match U256.Map.find_opt slot st.words with Some v -> v | None -> U256.zero

let set_slot st slot value =
  if U256.is_zero value then st.words <- U256.Map.remove slot st.words
  else st.words <- U256.Map.add slot value st.words

let slots st = U256.Map.bindings st.words

type env = {
  e_caller : Evm.Address.t;
  e_value : U256.t;
  e_timestamp : int;
  e_number : int;
  e_self : Evm.Address.t;
}

let default_env =
  {
    e_caller = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce";
    e_value = U256.zero;
    e_timestamp = Evm.Host.default_block.Evm.Host.timestamp;
    e_number = Evm.Host.default_block.Evm.Host.number;
    e_self = Evm.Address.of_hex "0x00000000000000000000000000000000000005e1";
  }

type outcome = Returned of U256.t | Stopped | Reverted

exception Halt of outcome

let mask_bytes n = U256.pred (U256.shift_left U256.one (8 * n))

(* Packed variable access over the word map, mirroring Codegen's
   SLOAD/SHR/AND and RMW write sequences. *)
let read_entry st (e : Layout.entry) =
  let word = get_slot st (U256.of_int e.Layout.e_slot) in
  U256.logand
    (U256.shift_right word (8 * e.Layout.e_offset))
    (mask_bytes e.Layout.e_size)

let write_entry st (e : Layout.entry) value =
  let slot = U256.of_int e.Layout.e_slot in
  if e.Layout.e_size = 32 then set_slot st slot value
  else begin
    let masked = U256.logand value (mask_bytes e.Layout.e_size) in
    let shifted = U256.shift_left masked (8 * e.Layout.e_offset) in
    let clear =
      U256.lognot (U256.shift_left (mask_bytes e.Layout.e_size) (8 * e.Layout.e_offset))
    in
    set_slot st slot (U256.logor (U256.logand (get_slot st slot) clear) shifted)
  end

let mapping_slot (e : Layout.entry) key =
  U256.of_bytes_be
    (Keccak.digest
       (U256.to_bytes_be key ^ U256.to_bytes_be (U256.of_int e.Layout.e_slot)))

type ctx = {
  st : state;
  env : env;
  layout : Layout.entry list;
  params : U256.t array;
  param_types : Ast.ty array;
  selector_word : U256.t;  (* msg.sig as a right-aligned word *)
  locals : (string, U256.t) Hashtbl.t;
}

let truthy v = not (U256.is_zero v)

let rec eval_expr ctx (e : Ast.expr) =
  match e with
  | Ast.Const v -> v
  | Ast.Const_addr a -> Evm.Address.to_u256 a
  | Ast.Param i ->
      if i >= Array.length ctx.params then
        invalid_arg "Evalref: missing argument";
      let v = ctx.params.(i) in
      let size = Ast.type_size ctx.param_types.(i) in
      if size >= 32 then v else U256.logand v (mask_bytes size)
  | Ast.Load name -> read_entry ctx.st (Layout.find ctx.layout name)
  | Ast.Map_load (name, key) ->
      let entry = Layout.find ctx.layout name in
      get_slot ctx.st (mapping_slot entry (eval_expr ctx key))
  | Ast.Load_slot slot -> get_slot ctx.st slot
  | Ast.Cd_selector -> ctx.selector_word
  | Ast.Caller -> Evm.Address.to_u256 ctx.env.e_caller
  | Ast.Callvalue -> ctx.env.e_value
  | Ast.Timestamp -> U256.of_int ctx.env.e_timestamp
  | Ast.Blocknumber -> U256.of_int ctx.env.e_number
  | Ast.Self -> Evm.Address.to_u256 ctx.env.e_self
  | Ast.Selfbalance -> U256.zero
  | Ast.Local name -> (
      match Hashtbl.find_opt ctx.locals name with
      | Some v -> v
      | None -> U256.zero)
  | Ast.Not e -> if truthy (eval_expr ctx e) then U256.zero else U256.one
  | Ast.Bin (op, a, b) ->
      let va = eval_expr ctx a in
      let vb = eval_expr ctx b in
      let bool_word x = if x then U256.one else U256.zero in
      (match op with
      | Ast.Add -> U256.add va vb
      | Ast.Sub -> U256.sub va vb
      | Ast.Mul -> U256.mul va vb
      | Ast.Div -> U256.div va vb
      | Ast.And -> U256.logand va vb
      | Ast.Or -> U256.logor va vb
      | Ast.Xor -> U256.logxor va vb
      | Ast.Eq -> bool_word (U256.equal va vb)
      | Ast.Lt -> bool_word (U256.lt va vb)
      | Ast.Gt -> bool_word (U256.gt va vb))

let rec exec_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Store (name, e) ->
      write_entry ctx.st (Layout.find ctx.layout name) (eval_expr ctx e)
  | Ast.Map_store (name, key, value) ->
      let entry = Layout.find ctx.layout name in
      set_slot ctx.st (mapping_slot entry (eval_expr ctx key)) (eval_expr ctx value)
  | Ast.Store_slot (slot, e) -> set_slot ctx.st slot (eval_expr ctx e)
  | Ast.Require e -> if not (truthy (eval_expr ctx e)) then raise (Halt Reverted)
  | Ast.Return_value e -> raise (Halt (Returned (eval_expr ctx e)))
  | Ast.Stop -> raise (Halt Stopped)
  | Ast.Revert -> raise (Halt Reverted)
  | Ast.Transfer _ -> raise (Unsupported "transfer")
  | Ast.Call_sig _ -> raise (Unsupported "external call")
  | Ast.Delegate_sig _ | Ast.Delegate_forward _ ->
      raise (Unsupported "delegatecall")
  | Ast.Emit _ -> () (* logs have no storage effect *)
  | Ast.Let (name, e) -> Hashtbl.replace ctx.locals name (eval_expr ctx e)
  | Ast.While (cond, body) ->
      let fuel = ref 100_000 in
      while truthy (eval_expr ctx cond) do
        decr fuel;
        if !fuel <= 0 then raise (Unsupported "loop fuel exhausted");
        List.iter (exec_stmt ctx) body
      done
  | Ast.If (cond, then_, else_) ->
      if truthy (eval_expr ctx cond) then List.iter (exec_stmt ctx) then_
      else List.iter (exec_stmt ctx) else_

let make_ctx ?(env = default_env) st contract params param_types selector_word =
  {
    st;
    env;
    layout = Layout.of_contract contract;
    params;
    param_types;
    selector_word;
    locals = Hashtbl.create 4;
  }

let call ?(env = default_env) st (contract : Ast.contract) ~signature ~args =
  let selector = Keccak.selector signature in
  let selector_word = U256.of_bytes_be selector in
  match
    List.find_opt (fun f -> Ast.signature f = signature) contract.Ast.c_funcs
  with
  | Some f -> (
      (* Nonpayable guard, as the compiled dispatcher enforces. *)
      if f.Ast.f_mutability = Ast.Nonpayable && not (U256.is_zero env.e_value)
      then Reverted
      else
        let param_types =
          Array.of_list (List.map (fun p -> p.Ast.p_ty) f.Ast.f_params)
        in
        let ctx =
          make_ctx ~env st contract (Array.of_list args) param_types selector_word
        in
        try
          List.iter (exec_stmt ctx) f.Ast.f_body;
          Stopped
        with Halt o -> o)
  | None -> (
      match contract.Ast.c_fallback with
      | None -> Reverted
      | Some body -> (
          let ctx = make_ctx ~env st contract [||] [||] selector_word in
          try
            List.iter (exec_stmt ctx) body;
            Stopped
          with Halt o -> o))

let run_ctor ?(env = default_env) st (contract : Ast.contract) =
  let ctx = make_ctx ~env st contract [||] [||] U256.zero in
  try List.iter (exec_stmt ctx) contract.Ast.c_ctor with Halt _ -> ()
