open Ast

let eip1967_implementation_slot =
  U256.pred (U256.of_bytes_be (Keccak.digest "eip1967.proxy.implementation"))

let eip1967_admin_slot =
  U256.pred (U256.of_bytes_be (Keccak.digest "eip1967.proxy.admin"))

let eip1822_proxiable_slot = U256.of_bytes_be (Keccak.digest "PROXIABLE")

(* ------------------------------------------------------------------ *)
(* EIP-1167                                                             *)
(* ------------------------------------------------------------------ *)

let eip1167_prefix = Hexutil.of_hex "0x363d3d373d3d3d363d73"
let eip1167_suffix = Hexutil.of_hex "0x5af43d82803e903d91602b57fd5bf3"

let eip1167_runtime logic = eip1167_prefix ^ logic ^ eip1167_suffix

let eip1167_logic_address code =
  let plen = String.length eip1167_prefix in
  let slen = String.length eip1167_suffix in
  if
    String.length code = plen + 20 + slen
    && String.sub code 0 plen = eip1167_prefix
    && String.sub code (plen + 20) slen = eip1167_suffix
  then Some (Evm.Address.of_bytes (String.sub code plen 20))
  else None

(* ------------------------------------------------------------------ *)
(* Standard proxies                                                     *)
(* ------------------------------------------------------------------ *)

let eip1967_proxy ?(with_admin_functions = true) () =
  let funcs =
    if with_admin_functions then
      [
        func "upgradeTo"
          ~params:[ { p_name = "newImplementation"; p_ty = T_address } ]
          [
            Require (Bin (Eq, Caller, Load_slot eip1967_admin_slot));
            Store_slot (eip1967_implementation_slot, Param 0);
          ];
        func "admin" ~mutability:View ~returns:T_address
          [ Return_value (Load_slot eip1967_admin_slot) ];
      ]
    else []
  in
  contract "ERC1967Proxy" ~funcs
    ~fallback:(Some [ Delegate_forward (To_slot eip1967_implementation_slot) ])

let eip1967_beacon_slot =
  U256.pred (U256.of_bytes_be (Keccak.digest "eip1967.proxy.beacon"))

let beacon_proxy () =
  contract "BeaconProxy"
    ~fallback:(Some [ Delegate_forward (To_beacon eip1967_beacon_slot) ])

let beacon () =
  contract "UpgradeableBeacon"
    ~vars:
      [
        { v_name = "owner"; v_ty = T_address };
        { v_name = "impl"; v_ty = T_address };
      ]
    ~funcs:
      [
        func "implementation" ~mutability:View ~returns:T_address
          [ Return_value (Load "impl") ];
        func "upgradeTo"
          ~params:[ { p_name = "newImpl"; p_ty = T_address } ]
          [
            Require (Bin (Eq, Caller, Load "owner"));
            Store ("impl", Param 0);
          ];
      ]
    ~ctor:[ Store ("owner", Caller) ]

let eip1822_proxy () =
  contract "UUPSProxy"
    ~fallback:(Some [ Delegate_forward (To_slot eip1822_proxiable_slot) ])

let eip1822_logic () =
  contract "UUPSLogic"
    ~vars:[ { v_name = "value"; v_ty = T_uint 256 } ]
    ~funcs:
      [
        func "updateCodeAddress"
          ~params:[ { p_name = "newAddress"; p_ty = T_address } ]
          [ Store_slot (eip1822_proxiable_slot, Param 0) ];
        func "setValue"
          ~params:[ { p_name = "v"; p_ty = T_uint 256 } ]
          [ Store ("value", Param 0) ];
        func "getValue" ~mutability:View ~returns:(T_uint 256)
          [ Return_value (Load "value") ];
      ]

let slot_var_proxy ?(extra_funcs = []) ?(owner_first = true) () =
  let vars =
    if owner_first then
      [
        { v_name = "owner"; v_ty = T_address };
        { v_name = "logic"; v_ty = T_address };
      ]
    else
      [
        { v_name = "logic"; v_ty = T_address };
        { v_name = "owner"; v_ty = T_address };
      ]
  in
  contract "SlotVarProxy" ~vars
    ~funcs:
      ([
         func "setLogic"
           ~params:[ { p_name = "newLogic"; p_ty = T_address } ]
           [
             Require (Bin (Eq, Caller, Load "owner"));
             Store ("logic", Param 0);
           ];
       ]
      @ extra_funcs)
    ~fallback:(Some [ Delegate_forward (To_var "logic") ])
    ~ctor:[ Store ("owner", Caller) ]

let diamond_proxy () =
  contract "DiamondProxy"
    ~vars:
      [
        { v_name = "owner"; v_ty = T_address };
        { v_name = "facets"; v_ty = T_mapping (T_bytes 4, T_address) };
      ]
    ~funcs:
      [
        func "setFacet"
          ~params:
            [
              { p_name = "selector"; p_ty = T_uint 256 };
              { p_name = "facet"; p_ty = T_address };
            ]
          [
            Require (Bin (Eq, Caller, Load "owner"));
            Map_store ("facets", Param 0, Param 1);
          ];
      ]
    ~fallback:
      (Some
         [
           If
             ( Not (Bin (Eq, Map_load ("facets", Cd_selector), Const U256.zero)),
               [ Delegate_forward (To_facet "facets") ],
               [ Revert ] );
         ])
    ~ctor:[ Store ("owner", Caller) ]

let library_caller ~lib =
  contract "SafeMathUser"
    ~vars:[ { v_name = "total"; v_ty = T_uint 256 } ]
    ~funcs:
      [
        func "addChecked"
          ~params:
            [
              { p_name = "a"; p_ty = T_uint 256 };
              { p_name = "b"; p_ty = T_uint 256 };
            ]
          [
            (* Library call: DELEGATECALL outside the fallback. *)
            Delegate_sig
              (Const_addr lib, "add(uint256,uint256)", [ Param 0; Param 1 ]);
            Store ("total", Bin (Add, Param 0, Param 1));
          ];
        func "total" ~mutability:View ~returns:(T_uint 256)
          [ Return_value (Load "total") ];
      ]

(* ------------------------------------------------------------------ *)
(* Workload logic contracts                                             *)
(* ------------------------------------------------------------------ *)

let counter_logic () =
  contract "Counter"
    ~vars:[ { v_name = "count"; v_ty = T_uint 256 } ]
    ~funcs:
      [
        func "increment" [ Store ("count", Bin (Add, Load "count", Const U256.one)) ];
        func "count" ~mutability:View ~returns:(T_uint 256)
          [ Return_value (Load "count") ];
        func "setCount"
          ~params:[ { p_name = "n"; p_ty = T_uint 256 } ]
          [ Store ("count", Param 0) ];
      ]

let erc20ish_logic () =
  contract "MiniToken"
    ~vars:
      [
        { v_name = "totalSupply"; v_ty = T_uint 256 };
        { v_name = "balances"; v_ty = T_mapping (T_address, T_uint 256) };
      ]
    ~funcs:
      [
        func "mint"
          ~params:[ { p_name = "amount"; p_ty = T_uint 256 } ]
          [
            Map_store
              ( "balances",
                Caller,
                Bin (Add, Map_load ("balances", Caller), Param 0) );
            Store ("totalSupply", Bin (Add, Load "totalSupply", Param 0));
            Emit ("Transfer(address,address,uint256)", [ Caller; Param 0 ]);
          ];
        func "balanceOf" ~mutability:View
          ~params:[ { p_name = "who"; p_ty = T_address } ]
          ~returns:(T_uint 256)
          [ Return_value (Map_load ("balances", Param 0)) ];
        func "totalSupply" ~mutability:View ~returns:(T_uint 256)
          [ Return_value (Load "totalSupply") ];
      ]

(* ------------------------------------------------------------------ *)
(* Listing 1: honeypot function collision                               *)
(* ------------------------------------------------------------------ *)

let usdt_address = Evm.Address.of_hex "0xdac17f958d2ee523a2206206994597c13d831ec7"

let honeypot_proxy () =
  contract "HoneypotProxy"
    ~vars:
      [
        { v_name = "owner"; v_ty = T_address };
        { v_name = "logic"; v_ty = T_address };
      ]
    ~funcs:
      [
        (* Selector 0xdf4a3106 == selector of free_ether_withdrawal(). *)
        func "impl_LUsXCWD2AKCc"
          [
            Delegate_sig
              ( Const_addr usdt_address,
                "transfer(address,uint256)",
                [ Load "owner"; Const (U256.of_int 1000) ] );
          ];
      ]
    ~fallback:(Some [ Delegate_forward (To_var "logic") ])
    ~ctor:[ Store ("owner", Caller) ]

let ten_ether = U256.of_decimal "10000000000000000000"

let honeypot_logic () =
  contract "HoneypotLogic"
    ~funcs:
      [ func "free_ether_withdrawal" ~mutability:Payable [ Transfer (Caller, Const ten_ether) ] ]

(* ------------------------------------------------------------------ *)
(* Listing 2: Audius storage collision                                  *)
(* ------------------------------------------------------------------ *)

let audius_proxy () =
  contract "AudiusProxy"
    ~vars:
      [
        { v_name = "owner"; v_ty = T_address };
        { v_name = "logic"; v_ty = T_address };
      ]
    ~funcs:
      [
        func "setOwner"
          ~params:[ { p_name = "newOwner"; p_ty = T_address } ]
          [
            Require (Bin (Eq, Caller, Load "owner"));
            Store ("owner", Param 0);
          ];
      ]
    ~fallback:(Some [ Delegate_forward (To_var "logic") ])
    ~ctor:[ Store ("owner", Caller) ]

let audius_logic () =
  contract "AudiusLogic"
    ~vars:
      [
        (* Both flags pack into slot 0, colliding with the proxy's owner. *)
        { v_name = "initialized"; v_ty = T_bool };
        { v_name = "initializing"; v_ty = T_bool };
      ]
    ~funcs:
      [
        func "initialize"
          [
            Require (Bin (Or, Load "initializing", Not (Load "initialized")));
            Store ("initialized", Const U256.one);
            Store ("initializing", Const U256.zero);
            (* The inherited owner assignment: in the proxy's layout the
               owner is the full low 20 bytes of slot 0, so this write
               immediately clobbers the two flags just set — Listing 2's
               line 26, the heart of the Audius exploit. *)
            Store_slot (U256.zero, Caller);
          ];
        func "isInitialized" ~mutability:View ~returns:T_bool
          [ Return_value (Load "initialized") ];
      ]

(* ------------------------------------------------------------------ *)
(* Padding case                                                         *)
(* ------------------------------------------------------------------ *)

let padding_proxy () =
  contract "PaddingProxy"
    ~vars:
      [
        { v_name = "logic"; v_ty = T_address };
        { v_name = "gap"; v_ty = T_uint 96 };
        (* padding to 32 bytes *)
      ]
    ~funcs:
      [
        func "setLogic"
          ~params:[ { p_name = "newLogic"; p_ty = T_address } ]
          [ Store ("logic", Param 0) ];
      ]
    ~fallback:(Some [ Delegate_forward (To_var "logic") ])

let padding_logic () =
  contract "PaddingLogic"
    ~vars:
      [
        { v_name = "implementation_"; v_ty = T_address };
        (* The differently-named remainder of slot 0 is never touched. *)
        { v_name = "reserved"; v_ty = T_uint 96 };
        { v_name = "value"; v_ty = T_uint 256 };
      ]
    ~funcs:
      [
        func "setValue"
          ~params:[ { p_name = "v"; p_ty = T_uint 256 } ]
          [ Store ("value", Param 0) ];
        func "getValue" ~mutability:View ~returns:(T_uint 256)
          [ Return_value (Load "value") ];
      ]
