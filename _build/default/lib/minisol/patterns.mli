(** A library of the contract shapes the paper analyzes: the standard proxy
    patterns of Table 4, the library-call contracts ProxioN must exclude
    (§2.2), the paper's running collision examples (Listings 1 and 2), and
    the diamond pattern ProxioN misses (§8.1). *)

(** {1 Well-known storage slots} *)

val eip1967_implementation_slot : U256.t
(** [keccak256("eip1967.proxy.implementation") - 1]. *)

val eip1967_admin_slot : U256.t
(** [keccak256("eip1967.proxy.admin") - 1]. *)

val eip1822_proxiable_slot : U256.t
(** [keccak256("PROXIABLE")]. *)

(** {1 EIP-1167 minimal proxy} *)

val eip1167_runtime : Evm.Address.t -> string
(** The canonical 45-byte minimal-proxy runtime with the logic address
    hard-coded — byte-for-byte the bytecode EIP-1167 standardizes. *)

val eip1167_logic_address : string -> Evm.Address.t option
(** Recognize canonical minimal-proxy bytecode and extract its target. *)

(** {1 Proxy contracts (Minisol sources)} *)

val eip1967_proxy : ?with_admin_functions:bool -> unit -> Ast.contract
(** Fallback forwards via the EIP-1967 implementation slot.  With
    [with_admin_functions] (default true), exposes [upgradeTo(address)] and
    [admin()] gated on the EIP-1967 admin slot — the transparent-proxy
    shape. *)

val eip1967_beacon_slot : U256.t
(** [keccak256("eip1967.proxy.beacon") - 1]. *)

val beacon_proxy : unit -> Ast.contract
(** The EIP-1967 beacon variant: the fallback static-calls the beacon's
    [implementation()] and delegate-forwards to the returned address.  The
    logic address is {e computed}, not read from the proxy's own storage. *)

val beacon : unit -> Ast.contract
(** The beacon contract itself: [implementation()] plus an owner-gated
    [upgradeTo(address)]. *)

val eip1822_proxy : unit -> Ast.contract
(** UUPS-style: function-less, forwards via [keccak256("PROXIABLE")]. *)

val eip1822_logic : unit -> Ast.contract
(** Logic half of UUPS: carries [updateCodeAddress(address)] writing the
    PROXIABLE slot, plus a workload function. *)

val slot_var_proxy : ?extra_funcs:Ast.func list -> ?owner_first:bool -> unit -> Ast.contract
(** A non-standard ("Others" in Table 4) proxy keeping the logic address in
    an ordinary storage variable.  [owner_first] (default true) declares
    [owner] before [logic], the layout of Listing 2's proxy. *)

val diamond_proxy : unit -> Ast.contract
(** EIP-2535-style: the fallback delegates only when the facet mapping has
    an entry for the incoming selector — randomly probed calldata reverts,
    so emulation-based detection misses it (§8.1). *)

val library_caller : lib:Evm.Address.t -> Ast.contract
(** A contract whose {e function body} (not fallback) delegatecalls a
    library, SafeMath-style.  Contains DELEGATECALL yet is not a proxy under
    the paper's definition; CRUSH-like baselines misclassify it. *)

(** {1 Workload logic contracts} *)

val counter_logic : unit -> Ast.contract
(** A benign logic contract: [increment()], [count()], [setCount(uint256)]. *)

val erc20ish_logic : unit -> Ast.contract
(** A token-flavoured logic contract with a balance mapping. *)

(** {1 Listing 1: the honeypot function collision} *)

val usdt_address : Evm.Address.t

val honeypot_proxy : unit -> Ast.contract
(** The [Proxy] of Listing 1: [impl_LUsXCWD2AKCc()] whose selector collides
    with the logic's [free_ether_withdrawal()] (both [0xdf4a3106]) and whose
    body delegate-calls a token transfer to the owner. *)

val honeypot_logic : unit -> Ast.contract
(** The [Logic] of Listing 1: [free_ether_withdrawal()] transferring 10
    ether to the caller. *)

(** {1 Listing 2: the Audius storage collision} *)

val audius_proxy : unit -> Ast.contract
(** [owner] (20 bytes) at slot 0, [logic] at slot 1. *)

val audius_logic : unit -> Ast.contract
(** [initialized]/[initializing] flags sharing slot 0, plus the re-callable
    [initialize()] that overwrites the owner through the collision. *)

(** {1 Padding case (USCHunt false positive)} *)

val padding_proxy : unit -> Ast.contract
val padding_logic : unit -> Ast.contract
(** A proxy/logic pair whose slot-0 layouts differ only by an unused padding
    variable; USCHunt-style name comparison flags it, but it is not
    exploitable (§6.3). *)
