let group_by_code_hash ~code_of addresses =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun addr ->
      let hash = Keccak.digest (code_of addr) in
      match Hashtbl.find_opt table hash with
      | Some bucket -> bucket := addr :: !bucket
      | None ->
          Hashtbl.replace table hash (ref [ addr ]);
          order := hash :: !order)
    addresses;
  List.rev_map
    (fun hash -> (hash, List.rev !(Hashtbl.find table hash)))
    !order

let duplicate_distribution ~code_of addresses =
  group_by_code_hash ~code_of addresses
  |> List.map (fun (_, group) -> List.length group)
  |> List.sort (fun a b -> compare b a)

let unique_count ~code_of addresses =
  List.length (group_by_code_hash ~code_of addresses)
