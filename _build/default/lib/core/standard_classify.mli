(** Proxy design-standard classification (Table 4).

    ProxioN buckets each detected proxy by where its logic address lives:
    hard-coded bytecode targets with tiny runtimes are minimal proxies
    (EIP-1167); the [keccak256("PROXIABLE")] slot marks EIP-1822 (UUPS);
    the [keccak256("eip1967.proxy.implementation") - 1] slot marks
    EIP-1967; anything else storing an address in storage is non-standard
    ("Others" in the paper's Table 4). *)

type standard =
  | Eip1167
  | Eip1822
  | Eip1967
  | Other

val to_string : standard -> string

val classify : code:string -> Proxy_detect.target_source -> standard

val minimal_code_limit : int
(** Byte-size threshold under which a hard-coded-target proxy counts as
    minimal — the paper uses "less than 100 bytes" (§4.3). *)
