type standard = Eip1167 | Eip1822 | Eip1967 | Other

let to_string = function
  | Eip1167 -> "EIP-1167"
  | Eip1822 -> "EIP-1822"
  | Eip1967 -> "EIP-1967"
  | Other -> "Others"

let minimal_code_limit = 100

let classify ~code (source : Proxy_detect.target_source) =
  match source with
  | Proxy_detect.Hardcoded ->
      if String.length code < minimal_code_limit then Eip1167 else Other
  | Proxy_detect.Storage_slot slot ->
      if U256.equal slot Minisol.Patterns.eip1822_proxiable_slot then Eip1822
      else if U256.equal slot Minisol.Patterns.eip1967_implementation_slot then
        Eip1967
      else Other
  | Proxy_detect.Computed -> Other
