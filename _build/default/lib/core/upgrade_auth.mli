(** Upgrade-authority analysis — who can repoint a proxy's logic address?

    Salehi et al. (§9.1) study "the ownership of upgradability": a proxy
    whose logic slot can be rewritten by anyone is one transaction away
    from total takeover, while a properly gated one can only be upgraded
    by its admin.  This module answers the question dynamically, in the
    spirit of the emulation approach: fire every dispatcher selector at
    the proxy from an unprivileged attacker account (with the attacker's
    address as the argument) inside a state snapshot, and watch whether
    the logic slot changes.  A static pass over the storage-access profile
    supplies the gating evidence. *)

type authority =
  | Immutable
      (** The logic address is hard-coded (minimal proxies): no upgrade
          mechanism exists at all. *)
  | Gated
      (** Upgrade writes exist but are access-controlled: the attacker
          probe could not change the slot and the slot's writes sit behind
          caller checks. *)
  | Open_to_anyone of string
      (** The attacker probe changed the logic slot.  Carries the 4-byte
          selector that did it — the smoking gun. *)
  | No_upgrade_path
      (** Slot-based proxy, but no reachable write to the slot was found
          (upgrades happen through mechanisms this analysis cannot see). *)

val to_string : authority -> string

val analyze :
  Chain.t -> Evm.Address.t -> Proxy_detect.target_source -> authority
(** Analyze one detected proxy.  All probe transactions run inside a
    snapshot and are rolled back. *)
