module Address = Evm.Address
module Host = Evm.Host
module Interp = Evm.Interp

type authority =
  | Immutable
  | Gated
  | Open_to_anyone of string
  | No_upgrade_path

let to_string = function
  | Immutable -> "immutable (hard-coded logic)"
  | Gated -> "gated (access-controlled upgrade)"
  | Open_to_anyone sel -> Printf.sprintf "OPEN to anyone (via %s)" (Hexutil.to_hex sel)
  | No_upgrade_path -> "no visible upgrade path"

let attacker = Address.of_hex "0x00000000000000000000000000000000a7747c4e"

(* Probe one selector: selector ++ attacker-address word ++ zero word,
   from the attacker.  Returns true when the logic slot changed. *)
let probe_changes_slot host proxy slot selector =
  let input =
    selector
    ^ U256.to_bytes_be (Address.to_u256 attacker)
    ^ String.make 32 '\000'
  in
  let snapshot = host.Host.snapshot () in
  let before = host.Host.get_storage proxy slot in
  let result =
    Interp.execute ~step_limit:200_000 host
      (Interp.make_call ~caller:attacker ~target:proxy ~input ())
  in
  let after = host.Host.get_storage proxy slot in
  host.Host.revert_to snapshot;
  Interp.succeeded result && not (U256.equal before after)

let analyze chain proxy (source : Proxy_detect.target_source) =
  match source with
  | Proxy_detect.Hardcoded -> Immutable
  | Proxy_detect.Computed -> No_upgrade_path
  | Proxy_detect.Storage_slot slot -> (
      let code = Chain.code_at chain proxy in
      let host = Chain.host_at_head chain in
      let selectors = Selector_extract.dispatcher_selectors code in
      match
        List.find_opt (fun sel -> probe_changes_slot host proxy slot sel) selectors
      with
      | Some sel -> Open_to_anyone sel
      | None ->
          (* No unprivileged write worked.  Distinguish "gated" from "no
             path" via the static profile: does any write to the slot
             exist in the bytecode at all? *)
          let writes_slot =
            List.exists
              (fun (a : Storage_access.access) ->
                a.Storage_access.a_kind = Storage_access.Write
                && Storage_access.slot_id_compare a.Storage_access.a_slot
                     (Storage_access.Fixed slot)
                   = 0)
              (Storage_access.profile code)
          in
          if writes_slot then Gated else No_upgrade_path)
