module Address = Evm.Address

type severity = Critical | High | Medium | Info

let severity_to_string = function
  | Critical -> "CRITICAL"
  | High -> "HIGH"
  | Medium -> "MEDIUM"
  | Info -> "INFO"

let severity_rank = function Critical -> 0 | High -> 1 | Medium -> 2 | Info -> 3

type finding = {
  f_severity : severity;
  f_title : string;
  f_proxy : Address.t;
  f_logic : Address.t;
  f_detail : string;
}

let region_str (r : Storage_collision.region) =
  Printf.sprintf "[offset %d, %d bytes%s%s]" r.Storage_collision.g_offset
    r.Storage_collision.g_width
    (if r.Storage_collision.g_writes then ", written" else "")
    (if r.Storage_collision.g_guards_caller then ", access-control" else "")

let storage_findings (p : Pipeline.pair_report) =
  List.map
    (fun (c : Storage_collision.collision) ->
      let detail =
        Printf.sprintf "%s: proxy sees %s, logic sees %s%s"
          (Storage_access.slot_id_to_string c.Storage_collision.slot)
          (region_str c.Storage_collision.proxy_region)
          (region_str c.Storage_collision.logic_region)
          (if c.Storage_collision.verified then
             "; exploit VERIFIED by test transaction"
           else "")
      in
      let severity =
        if c.Storage_collision.verified then Critical
        else if c.Storage_collision.sensitive then Medium
        else Info
      in
      {
        f_severity = severity;
        f_title = "storage collision";
        f_proxy = p.Pipeline.p_proxy;
        f_logic = p.Pipeline.p_logic;
        f_detail = detail;
      })
    p.Pipeline.p_storage_collisions

let func_findings (p : Pipeline.pair_report) =
  match p.Pipeline.p_func_collisions with
  | [] -> []
  | collisions ->
      let selectors =
        String.concat ", "
          (List.map
             (fun (c : Func_collision.collision) ->
               Hexutil.to_hex c.Func_collision.selector
               ^
               match (c.Func_collision.proxy_signature, c.Func_collision.logic_signature) with
               | Some a, Some b -> Printf.sprintf " (%s vs %s)" a b
               | _ -> "")
             collisions)
      in
      [
        {
          f_severity = (if p.Pipeline.p_honeypot then High else Info);
          f_title =
            (if p.Pipeline.p_honeypot then "honeypot function collision"
             else "function collision");
          f_proxy = p.Pipeline.p_proxy;
          f_logic = p.Pipeline.p_logic;
          f_detail =
            Printf.sprintf
              "colliding selector%s %s: calls meant for the logic are captured \
               by the proxy%s"
              (if List.length collisions > 1 then "s" else "")
              selectors
              (if p.Pipeline.p_honeypot then
                 "; the logic baits the caller while the proxy moves assets"
               else "");
        };
      ]

let of_report (report : Pipeline.report) =
  let all =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun p -> storage_findings p @ func_findings p)
          r.Pipeline.r_pairs)
      report.Pipeline.contracts
  in
  List.stable_sort
    (fun a b -> compare (severity_rank a.f_severity) (severity_rank b.f_severity))
    all

let render ?limit findings =
  let shown =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) findings
    | None -> findings
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "== Findings (%d total%s) ==\n" (List.length findings)
       (match limit with
       | Some n when List.length findings > n -> Printf.sprintf ", first %d" n
       | _ -> ""));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s\n  proxy %s -> logic %s\n  %s\n"
           (severity_to_string f.f_severity)
           f.f_title (Address.to_hex f.f_proxy) (Address.to_hex f.f_logic)
           f.f_detail))
    shown;
  Buffer.contents buf

let to_json findings =
  Report.Json.List
    (List.map
       (fun f ->
         Report.Json.Obj
           [
             ("severity", Report.Json.String (severity_to_string f.f_severity));
             ("title", Report.Json.String f.f_title);
             ("proxy", Report.Json.String (Address.to_hex f.f_proxy));
             ("logic", Report.Json.String (Address.to_hex f.f_logic));
             ("detail", Report.Json.String f.f_detail);
           ])
       findings)
