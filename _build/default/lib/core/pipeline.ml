module Address = Evm.Address

type source_lookup = Address.t -> Minisol.Ast.contract option

type analysis_method =
  | Source_source
  | Mixed
  | Bytecode_bytecode

type pair_report = {
  p_proxy : Address.t;
  p_logic : Address.t;
  p_method : analysis_method;
  p_func_collisions : Func_collision.collision list;
  p_storage_collisions : Storage_collision.collision list;
  p_honeypot : bool;
}

type contract_report = {
  r_address : Address.t;
  r_code_hash : string;
  r_detection : Proxy_detect.t;
  r_standard : Standard_classify.standard option;
  r_resolution : Logic_resolve.resolution option;
  r_pairs : pair_report list;
  r_dedup_hit : bool;
}

type stats = {
  s_analyzed : int;
  s_proxies : int;
  s_emulation_errors : int;
  s_pairs : int;
  s_func_colliding_pairs : int;
  s_storage_colliding_pairs : int;
  s_verified_storage_pairs : int;
  s_honeypot_pairs : int;
  s_dedup_hits : int;
  s_unique_codes : int;
  s_api_calls : int;
  s_emulation_steps : int;
}

type report = { contracts : contract_report list; stats : stats }

let is_proxy_report r = Proxy_detect.is_proxy r.r_detection
let proxies report = List.filter is_proxy_report report.contracts

(* Detection results cached per code hash.  A cached slot-based proxy needs
   only a storage read for the new address; everything else transfers
   as-is. *)
type cached_detection =
  | C_verdict of Proxy_detect.verdict
  | C_slot_proxy of U256.t

let side_for ~source ~chain addr =
  match source addr with
  | Some ast -> Storage_collision.Source ast
  | None -> Storage_collision.Bytecode (Chain.code_at chain addr)

let func_side_for ~source ~chain addr =
  match source addr with
  | Some ast -> Func_collision.Source ast
  | None -> Func_collision.Bytecode (Chain.code_at chain addr)

let method_for ~source proxy logic =
  match (source proxy, source logic) with
  | Some _, Some _ -> Source_source
  | None, None -> Bytecode_bytecode
  | _ -> Mixed

let run ?(verify_storage = true) ?(dedup = true) ?(diamond_extension = false)
    ?addresses ~chain ~source () =
  let addresses =
    match addresses with
    | Some l -> l
    | None -> List.map (fun m -> m.Chain.cm_address) (Chain.all_contracts chain)
  in
  let host = Chain.host_at_head chain in
  let detection_cache : (string, cached_detection) Hashtbl.t =
    Hashtbl.create 256
  in
  let pair_cache : (string * string, Func_collision.collision list * Storage_collision.collision list) Hashtbl.t =
    Hashtbl.create 256
  in
  let dedup_hits = ref 0 in
  let steps_total = ref 0 in
  Chain.reset_api_call_count chain;
  let detect_with_cache addr code_hash =
    let fresh () =
      let d =
        if diamond_extension then Diamond_probe.detect chain addr
        else Proxy_detect.detect ~host addr
      in
      steps_total := !steps_total + d.Proxy_detect.steps;
      (if dedup then
         match d.Proxy_detect.verdict with
         | Proxy_detect.Proxy { source = Proxy_detect.Storage_slot slot; _ } ->
             Hashtbl.replace detection_cache code_hash (C_slot_proxy slot)
         | Proxy_detect.Proxy { source = Proxy_detect.Computed; _ }
           when diamond_extension ->
             (* Extension verdicts depend on per-address history, not just
                code: unsafe to share across clones. *)
             ()
         | v -> Hashtbl.replace detection_cache code_hash (C_verdict v));
      (d, false)
    in
    if not dedup then fresh ()
    else
      match Hashtbl.find_opt detection_cache code_hash with
      | None -> fresh ()
      | Some cached ->
          incr dedup_hits;
          let verdict =
            match cached with
            | C_verdict v -> v
            | C_slot_proxy slot ->
                let value = host.Evm.Host.get_storage addr slot in
                Proxy_detect.Proxy
                  {
                    target = Address.of_u256 value;
                    source = Proxy_detect.Storage_slot slot;
                  }
          in
          ( {
              Proxy_detect.address = addr;
              verdict;
              probe_selector = "";
              steps = 0;
            },
            true )
  in
  let analyze_pair ~proxy_addr ~logic_addr =
    let key =
      ( Keccak.digest (Chain.code_at chain proxy_addr),
        Keccak.digest (Chain.code_at chain logic_addr) )
    in
    let func_collisions, storage_collisions =
      match (if dedup then Hashtbl.find_opt pair_cache key else None) with
      | Some cached -> cached
      | None ->
          let fc =
            Func_collision.detect
              ~proxy:(func_side_for ~source ~chain proxy_addr)
              ~logic:(func_side_for ~source ~chain logic_addr)
          in
          let sc =
            Storage_collision.detect
              ~proxy:(side_for ~source ~chain proxy_addr)
              ~logic:(side_for ~source ~chain logic_addr)
          in
          if dedup then Hashtbl.replace pair_cache key (fc, sc);
          (fc, sc)
    in
    let storage_collisions =
      if verify_storage && storage_collisions <> [] then
        Storage_collision.verify ~chain ~proxy_address:proxy_addr
          ~logic_address:logic_addr storage_collisions
      else storage_collisions
    in
    let honeypot =
      func_collisions <> []
      && (Honeypot.classify
            ~proxy:(func_side_for ~source ~chain proxy_addr)
            ~logic:(func_side_for ~source ~chain logic_addr))
           .Honeypot.is_honeypot
    in
    {
      p_proxy = proxy_addr;
      p_logic = logic_addr;
      p_method = method_for ~source proxy_addr logic_addr;
      p_func_collisions = func_collisions;
      p_storage_collisions = storage_collisions;
      p_honeypot = honeypot;
    }
  in
  let analyze_contract addr =
    let code = Chain.code_at chain addr in
    let code_hash = Keccak.digest code in
    let detection, dedup_hit = detect_with_cache addr code_hash in
    match detection.Proxy_detect.verdict with
    | Proxy_detect.Proxy { source = target_source; target } ->
        let standard = Standard_classify.classify ~code target_source in
        let resolution =
          Logic_resolve.resolve ~probed:target chain addr target_source
        in
        let logic_addresses =
          let all =
            resolution.Logic_resolve.historical
            @ Option.to_list resolution.Logic_resolve.current
          in
          List.sort_uniq Address.compare all
          |> List.filter (fun a -> Chain.code_at chain a <> "")
        in
        let pairs =
          List.map
            (fun logic_addr -> analyze_pair ~proxy_addr:addr ~logic_addr)
            logic_addresses
        in
        {
          r_address = addr;
          r_code_hash = code_hash;
          r_detection = detection;
          r_standard = Some standard;
          r_resolution = Some resolution;
          r_pairs = pairs;
          r_dedup_hit = dedup_hit;
        }
    | _ ->
        {
          r_address = addr;
          r_code_hash = code_hash;
          r_detection = detection;
          r_standard = None;
          r_resolution = None;
          r_pairs = [];
          r_dedup_hit = dedup_hit;
        }
  in
  let contracts = List.map analyze_contract addresses in
  let all_pairs = List.concat_map (fun r -> r.r_pairs) contracts in
  let stats =
    {
      s_analyzed = List.length contracts;
      s_proxies = List.length (List.filter is_proxy_report contracts);
      s_emulation_errors =
        List.length
          (List.filter
             (fun r ->
               match r.r_detection.Proxy_detect.verdict with
               | Proxy_detect.Emulation_error _ -> true
               | _ -> false)
             contracts);
      s_pairs = List.length all_pairs;
      s_func_colliding_pairs =
        List.length (List.filter (fun p -> p.p_func_collisions <> []) all_pairs);
      s_storage_colliding_pairs =
        List.length
          (List.filter (fun p -> p.p_storage_collisions <> []) all_pairs);
      s_verified_storage_pairs =
        List.length
          (List.filter
             (fun p ->
               List.exists
                 (fun (c : Storage_collision.collision) -> c.Storage_collision.verified)
                 p.p_storage_collisions)
             all_pairs);
      s_honeypot_pairs = List.length (List.filter (fun p -> p.p_honeypot) all_pairs);
      s_dedup_hits = !dedup_hits;
      s_unique_codes = Hashtbl.length detection_cache;
      s_api_calls = Chain.api_call_count chain;
      s_emulation_steps = !steps_total;
    }
  in
  { contracts; stats }
