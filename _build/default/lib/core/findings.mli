(** Human-readable security findings distilled from a pipeline report —
    the audit-tool face of ProxioN.

    Each finding carries the contracts involved, the evidence the analysis
    produced (colliding selectors, slot typings, verification outcome),
    and a severity that follows the paper's exploitability reasoning:
    verified storage collisions and honeypots are what adversaries
    actually exploited (§2.3), unverified candidates and benign
    function collisions are informational. *)

type severity = Critical | High | Medium | Info

val severity_to_string : severity -> string

type finding = {
  f_severity : severity;
  f_title : string;
  f_proxy : Evm.Address.t;
  f_logic : Evm.Address.t;
  f_detail : string;
}

val of_report : Pipeline.report -> finding list
(** Findings sorted most-severe first:
    - [Critical]: storage collision with a verified exploit transaction;
    - [High]: honeypot-shaped function collision;
    - [Medium]: unverified storage-collision candidate on a sensitive slot;
    - [Info]: remaining function collisions (e.g. benign clone
      collisions) and non-sensitive storage candidates. *)

val render : ?limit:int -> finding list -> string
(** Pretty text report; [limit] truncates (default: everything). *)

val to_json : finding list -> Report.Json.t
