(** Function-collision detection between a proxy and a logic contract
    (§5.1).

    Two functions collide when their 4-byte selectors coincide: call data
    meant for the logic function is captured by the proxy's dispatcher and
    never reaches the fallback (Listing 1).  When source is available the
    selector lists come straight from the contract ASTs (the Slither path);
    when only bytecode exists they come from
    {!Selector_extract.dispatcher_selectors} (the Panoramix path) — the
    paper's novel contribution for hidden contracts. *)

type side =
  | Source of Minisol.Ast.contract
  | Bytecode of string

type collision = {
  selector : string;  (** The shared 4 bytes. *)
  proxy_signature : string option;  (** Known only on the source path. *)
  logic_signature : string option;
}

val selectors_of_side : side -> string list
(** The selector list the chosen method recovers for one contract. *)

val detect : proxy:side -> logic:side -> collision list
(** Pairwise cross-check of the two selector lists. *)

val has_collision : proxy:side -> logic:side -> bool
