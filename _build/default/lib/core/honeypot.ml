module Ast = Minisol.Ast
module Disasm = Evm.Disasm
module Opcode = Evm.Opcode

type evidence = {
  e_selector : string;
  e_logic_pays_caller : bool;
  e_proxy_moves_assets : bool;
}

type verdict = { is_honeypot : bool; evidence : evidence list }

(* --- source heuristics ------------------------------------------------ *)

let rec stmt_pays_caller (s : Ast.stmt) =
  match s with
  | Ast.Transfer (Ast.Caller, _) -> true
  | Ast.If (_, a, b) ->
      List.exists stmt_pays_caller a || List.exists stmt_pays_caller b
  | Ast.While (_, body) -> List.exists stmt_pays_caller body
  | Ast.Transfer _ | Ast.Store _ | Ast.Map_store _ | Ast.Store_slot _
  | Ast.Require _ | Ast.Return_value _ | Ast.Stop | Ast.Revert
  | Ast.Call_sig _ | Ast.Delegate_sig _ | Ast.Delegate_forward _ | Ast.Emit _
  | Ast.Let _ ->
      false

let rec stmt_moves_assets (s : Ast.stmt) =
  match s with
  | Ast.Transfer (to_, _) -> to_ <> Ast.Caller
  | Ast.Delegate_sig _ | Ast.Call_sig _ -> true
  | Ast.If (_, a, b) ->
      List.exists stmt_moves_assets a || List.exists stmt_moves_assets b
  | Ast.While (_, body) -> List.exists stmt_moves_assets body
  | Ast.Store _ | Ast.Map_store _ | Ast.Store_slot _ | Ast.Require _
  | Ast.Return_value _ | Ast.Stop | Ast.Revert | Ast.Delegate_forward _
  | Ast.Emit _ | Ast.Let _ ->
      false

let source_function_body (c : Ast.contract) selector =
  List.find_map
    (fun f -> if Ast.selector f = selector then Some f.Ast.f_body else None)
    c.Ast.c_funcs

(* --- bytecode heuristics ---------------------------------------------- *)

(* Instructions of the function body reached from the dispatcher target,
   following statically resolved control flow. *)
let body_instrs code offset = Evm.Cfg.reachable_instrs (Evm.Cfg.build code) offset

let block_has_op instrs op =
  List.exists (fun i -> Opcode.equal i.Disasm.opcode op) instrs

(* A value-bearing CALL: our codegen pushes the amount right before the
   target for transfers; conservatively, any CALL counts as paying when the
   body has no DELEGATECALL (the enticing function shape). *)
let bytecode_pays_caller instrs =
  block_has_op instrs Opcode.CALL && not (block_has_op instrs Opcode.DELEGATECALL)

let bytecode_moves_assets instrs =
  block_has_op instrs Opcode.DELEGATECALL
  || block_has_op instrs Opcode.CALL
  || block_has_op instrs Opcode.SELFDESTRUCT

let side_evidence side selector ~role =
  match (side : Func_collision.side) with
  | Func_collision.Source c -> (
      match source_function_body c selector with
      | None -> false
      | Some body -> (
          match role with
          | `Pays_caller -> List.exists stmt_pays_caller body
          | `Moves_assets -> List.exists stmt_moves_assets body))
  | Func_collision.Bytecode code -> (
      match List.assoc_opt selector (Selector_extract.dispatcher_table code) with
      | None -> false
      | Some offset -> (
          let instrs = body_instrs code offset in
          match role with
          | `Pays_caller -> bytecode_pays_caller instrs
          | `Moves_assets -> bytecode_moves_assets instrs))

let classify ~proxy ~logic =
  let collisions = Func_collision.detect ~proxy ~logic in
  let evidence =
    List.map
      (fun (c : Func_collision.collision) ->
        {
          e_selector = c.Func_collision.selector;
          e_logic_pays_caller =
            side_evidence logic c.Func_collision.selector ~role:`Pays_caller;
          e_proxy_moves_assets =
            side_evidence proxy c.Func_collision.selector ~role:`Moves_assets;
        })
      collisions
  in
  {
    is_honeypot =
      List.exists (fun e -> e.e_logic_pays_caller && e.e_proxy_moves_assets) evidence;
    evidence;
  }
