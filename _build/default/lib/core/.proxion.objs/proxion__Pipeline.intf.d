lib/core/pipeline.mli: Chain Evm Func_collision Logic_resolve Minisol Proxy_detect Standard_classify Storage_collision
