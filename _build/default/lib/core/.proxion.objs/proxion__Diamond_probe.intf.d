lib/core/diamond_probe.mli: Chain Evm Proxy_detect
