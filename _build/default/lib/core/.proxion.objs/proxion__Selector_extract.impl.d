lib/core/selector_extract.ml: Array Evm Hashtbl List String U256
