lib/core/findings.ml: Buffer Evm Func_collision Hexutil List Pipeline Printf Report Storage_access Storage_collision String
