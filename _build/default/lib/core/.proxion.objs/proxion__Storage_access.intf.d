lib/core/storage_access.mli: U256
