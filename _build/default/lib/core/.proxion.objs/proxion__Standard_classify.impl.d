lib/core/standard_classify.ml: Minisol Proxy_detect String U256
