lib/core/proxy_detect.ml: Evm Hexutil Keccak List Printf Selector_extract String U256
