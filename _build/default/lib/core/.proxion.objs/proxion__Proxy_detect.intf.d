lib/core/proxy_detect.mli: Evm U256
