lib/core/storage_collision.mli: Chain Evm Minisol Storage_access
