lib/core/findings.mli: Evm Pipeline Report
