lib/core/upgrade_auth.mli: Chain Evm Proxy_detect
