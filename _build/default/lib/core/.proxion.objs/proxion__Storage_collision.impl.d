lib/core/storage_collision.ml: Chain Evm Hashtbl List Minisol Selector_extract Storage_access String U256
