lib/core/diamond_probe.ml: Chain Evm Hashtbl Keccak List Proxy_detect String U256
