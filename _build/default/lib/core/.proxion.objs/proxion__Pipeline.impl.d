lib/core/pipeline.ml: Chain Diamond_probe Evm Func_collision Hashtbl Honeypot Keccak List Logic_resolve Minisol Option Proxy_detect Standard_classify Storage_collision U256
