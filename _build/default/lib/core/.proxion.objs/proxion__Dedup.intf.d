lib/core/dedup.mli: Evm
