lib/core/logic_resolve.ml: Chain Evm Hashtbl List Minisol Option Proxy_detect U256
