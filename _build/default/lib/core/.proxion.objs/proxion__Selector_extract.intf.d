lib/core/selector_extract.mli:
