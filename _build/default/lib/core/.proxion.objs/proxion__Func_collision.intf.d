lib/core/func_collision.mli: Minisol
