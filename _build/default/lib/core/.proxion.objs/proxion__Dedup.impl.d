lib/core/dedup.ml: Hashtbl Keccak List
