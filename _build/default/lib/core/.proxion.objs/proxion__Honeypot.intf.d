lib/core/honeypot.mli: Func_collision
