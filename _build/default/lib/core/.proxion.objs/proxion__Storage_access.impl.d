lib/core/storage_access.ml: Array Evm Hashtbl List Option U256
