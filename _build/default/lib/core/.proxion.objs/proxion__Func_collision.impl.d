lib/core/func_collision.ml: Hashtbl List Minisol Selector_extract
