lib/core/standard_classify.mli: Proxy_detect
