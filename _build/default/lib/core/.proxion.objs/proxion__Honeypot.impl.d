lib/core/honeypot.ml: Evm Func_collision List Minisol Selector_extract
