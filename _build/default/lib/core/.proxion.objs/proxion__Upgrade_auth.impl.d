lib/core/upgrade_auth.ml: Chain Evm Hexutil List Printf Proxy_detect Selector_extract Storage_access String U256
