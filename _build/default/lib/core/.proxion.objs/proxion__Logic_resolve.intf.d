lib/core/logic_resolve.mli: Chain Evm Proxy_detect U256
