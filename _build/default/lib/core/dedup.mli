(** Bytecode-hash deduplication (§6.1, Figure 5).

    Most deployed contracts are byte-identical clones; ProxioN analyzes
    each unique bytecode once and reuses the result, which is what makes
    the 36-million-contract scan tractable.  This module provides the
    grouping primitive and the clone-distribution statistics behind
    Figure 5. *)

val group_by_code_hash :
  code_of:(Evm.Address.t -> string) ->
  Evm.Address.t list ->
  (string * Evm.Address.t list) list
(** Groups addresses by Keccak-256 of their runtime code, in first-seen
    order; each group lists addresses in input order. *)

val duplicate_distribution :
  code_of:(Evm.Address.t -> string) -> Evm.Address.t list -> int list
(** Clone counts per unique bytecode, sorted descending — the series
    Figure 5 plots on a log axis. *)

val unique_count : code_of:(Evm.Address.t -> string) -> Evm.Address.t list -> int
