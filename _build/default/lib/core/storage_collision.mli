(** Storage-collision detection between a proxy and a logic contract
    (§5.2), following CRUSH's pipeline: recover each side's slot typing,
    compare slots pairwise for type discrepancies, keep candidates where
    one side writes what the other reads differently, and verify
    exploitability by executing test transactions on the EVM.

    On the source path the typing comes from {!Minisol.Layout} plus a usage
    scan of the AST (variables never accessed are storage padding and are
    excluded — the precision edge over name-based comparison the paper
    reports in §6.3).  On the bytecode path it comes from
    {!Storage_access.profile}. *)

type side =
  | Source of Minisol.Ast.contract
  | Bytecode of string

(** One side's view of a slot region. *)
type region = {
  g_offset : int;
  g_width : int;
  g_reads : bool;
  g_writes : bool;
  g_guards_caller : bool;
}

type collision = {
  slot : Storage_access.slot_id;
  proxy_region : region;
  logic_region : region;
  sensitive : bool;
      (** The overlapping region takes part in an access-control check. *)
  verified : bool;  (** Set by {!verify} when an exploit transaction ran. *)
}

val regions_of_side : side -> (Storage_access.slot_id * region list) list
(** Typed regions per slot, as recovered by the chosen method. *)

val detect : proxy:side -> logic:side -> collision list
(** Collision candidates: same slot, overlapping regions, mismatched
    typing, and a write on at least one side against an access on the
    other. *)

val verify :
  chain:Chain.t ->
  proxy_address:Evm.Address.t ->
  logic_address:Evm.Address.t ->
  collision list ->
  collision list
(** CRUSH-style exploit verification: fire the logic contract's functions
    through the proxy from an attacker account inside a state snapshot and
    mark a candidate [verified] when the colliding slot region observably
    changes type/content.  The snapshot is rolled back afterwards. *)

val has_collision : proxy:side -> logic:side -> bool
