(** Storage-access profiling of EVM bytecode — the program-slicing and
    type-inference stage of the CRUSH approach ProxioN embeds (§5.2).

    A lightweight abstract interpreter runs over each basic block with a
    symbolic stack.  SLOAD/SSTORE sites whose slot operand is a known
    constant (or a keccak-derived mapping slot with a known base) become
    {!access} records; the shift/mask idioms solc emits for packed
    variables ([SHR k; AND (2^8w - 1)] on reads, [AND mask; SHL k; ...; OR]
    read-modify-writes) refine each access to a byte offset and width —
    recovering the variable's "type" in the sense CRUSH compares.
    Reads that flow into an [EQ] against [CALLER] and then a [JUMPI] are
    flagged as access-control guards; CRUSH calls these sensitive slots. *)

type slot_id =
  | Fixed of U256.t
  | Mapping of U256.t  (** keccak-derived element of the base slot. *)

val slot_id_compare : slot_id -> slot_id -> int
val slot_id_to_string : slot_id -> string

type kind = Read | Write

type access = {
  a_slot : slot_id;
  a_offset : int;  (** Byte offset from the least-significant end. *)
  a_width : int;  (** Bytes; 32 when unrefined. *)
  a_kind : kind;
  a_guards_caller : bool;
      (** This read takes part in a caller-identity comparison. *)
}

val profile : string -> access list
(** All storage accesses recoverable from the bytecode, deduplicated. *)

val reads : access list -> access list
val writes : access list -> access list

val accesses_of_slot : access list -> slot_id -> access list
val slots : access list -> slot_id list
(** Distinct slots touched, in first-touch order. *)
