module Address = Evm.Address

type resolution = {
  current : Address.t option;
  historical : Address.t list;
  api_calls : int;
  upgrade_count : int;
}

(* Algorithm 1 (PartitionBlocks).  The memo table avoids re-querying a
   height that serves as both an upper and a lower endpoint of adjacent
   ranges, matching the API-call economy the paper reports. *)
let algorithm1 chain address ~slot ~lower ~upper =
  let memo = Hashtbl.create 64 in
  let value_at h =
    match Hashtbl.find_opt memo h with
    | Some v -> v
    | None ->
        let v = Chain.get_storage_at chain address slot ~height:h in
        Hashtbl.replace memo h v;
        v
  in
  let rec partition lower upper =
    let v_lower = value_at lower in
    let v_upper = value_at upper in
    if U256.equal v_lower v_upper then U256.Set.singleton v_lower
    else begin
      let mid = (lower + upper) / 2 in
      let left = partition lower mid in
      let right = partition (mid + 1) upper in
      U256.Set.union left right
    end
  in
  if lower > upper then U256.Set.empty else partition lower upper

let resolve_slot chain address ~slot =
  let before = Chain.api_call_count chain in
  let upper = Chain.height chain in
  let values = algorithm1 chain address ~slot ~lower:0 ~upper in
  let api_calls = Chain.api_call_count chain - before in
  let address_of v =
    let a = Address.of_u256 v in
    if Address.equal a Address.zero then None else Some a
  in
  (* Order the found values by first appearance: walk the (small) set and
     sort by the height of first occurrence via the recorded change list. *)
  let change_heights = Chain.storage_change_heights chain address slot in
  let first_height v =
    (* Find the first recorded change whose value matches; the archive
       answers point queries, so check each change height. *)
    let rec scan = function
      | [] -> max_int
      | h :: rest ->
          if U256.equal (Chain.get_storage_at chain address slot ~height:h) v
          then h
          else scan rest
    in
    scan change_heights
  in
  let historical =
    U256.Set.elements values
    |> List.filter_map (fun v -> Option.map (fun a -> (first_height v, a)) (address_of v))
    |> List.sort (fun (h1, _) (h2, _) -> compare h1 h2)
    |> List.map snd
  in
  let current_value = Chain.get_storage_at chain address slot ~height:upper in
  let current = address_of current_value in
  let upgrade_count = max 0 (List.length historical - 1) in
  { current; historical; api_calls = api_calls + 1; upgrade_count }

let resolve ?probed chain address (source : Proxy_detect.target_source) =
  match source with
  | Proxy_detect.Hardcoded -> (
      (* The probe already produced the target; minimal proxies keep one
         logic contract forever. *)
      match Minisol.Patterns.eip1167_logic_address (Chain.code_at chain address) with
      | Some target ->
          { current = Some target; historical = [ target ]; api_calls = 0; upgrade_count = 0 }
      | None ->
          (* Hard-coded but not canonical minimal bytes: still a single
             fixed target; extract it by re-probing. *)
          let host = Chain.host_at_head chain in
          let d = Proxy_detect.detect ~host address in
          (match d.Proxy_detect.verdict with
          | Proxy_detect.Proxy { target; _ } ->
              { current = Some target; historical = [ target ]; api_calls = 0; upgrade_count = 0 }
          | _ -> { current = None; historical = []; api_calls = 0; upgrade_count = 0 }))
  | Proxy_detect.Storage_slot slot -> resolve_slot chain address ~slot
  | Proxy_detect.Computed -> (
      match probed with
      | Some target when not (Address.equal target Address.zero) ->
          {
            current = Some target;
            historical = [ target ];
            api_calls = 0;
            upgrade_count = 0;
          }
      | _ -> { current = None; historical = []; api_calls = 0; upgrade_count = 0 })
