(** Honeypot classification of function collisions (§2.3's exploit).

    A function collision is a {e honeypot} when the logic contract's
    colliding function looks enticing — it pays the caller — while the
    proxy's hidden twin does something else entirely (typically moving the
    victim's assets).  The victim reads the logic's source, calls through
    the proxy, and the dispatcher captures the call.

    Classification works on both representations:
    - {b source path}: the logic function body contains a transfer to
      [msg.sender]; the proxy function body moves value elsewhere or makes
      hidden external/delegate calls;
    - {b bytecode path}: the function body block reached from the
      dispatcher (via {!Selector_extract.dispatcher_table}) contains a
      value-bearing CALL in the logic, and a CALL/DELEGATECALL in the
      proxy.  Names are unavailable, but the shape survives compilation. *)

type evidence = {
  e_selector : string;  (** The colliding 4-byte selector. *)
  e_logic_pays_caller : bool;
  e_proxy_moves_assets : bool;
}

type verdict = { is_honeypot : bool; evidence : evidence list }

val classify :
  proxy:Func_collision.side -> logic:Func_collision.side -> verdict
(** Examine every function collision of the pair.  [is_honeypot] when at
    least one colliding selector shows both the bait and the trap. *)
