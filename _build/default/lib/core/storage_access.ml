module Opcode = Evm.Opcode
module Disasm = Evm.Disasm

type slot_id = Fixed of U256.t | Mapping of U256.t

let slot_id_compare a b =
  match (a, b) with
  | Fixed x, Fixed y | Mapping x, Mapping y -> U256.compare x y
  | Fixed _, Mapping _ -> -1
  | Mapping _, Fixed _ -> 1

let slot_id_to_string = function
  | Fixed s -> "slot " ^ U256.to_hex s
  | Mapping s -> "mapping@" ^ U256.to_hex s

type kind = Read | Write

type access = {
  a_slot : slot_id;
  a_offset : int;
  a_width : int;
  a_kind : kind;
  a_guards_caller : bool;
}

(* Mutable read records let later shifts/masks refine earlier SLOADs. *)
type read_rec = {
  r_slot : slot_id;
  mutable r_offset : int;
  mutable r_width : int;
  mutable r_guards : bool;
}

type sv =
  | Known of U256.t
  | Caller_v
  | Sload_v of read_rec
  | Masked of sv * int  (* low-byte mask of this width applied *)
  | Shifted_left of sv * int  (* byte shift *)
  | Or_v of sv * sv
  | Hash_v of U256.t option  (* mapping slot; base when known *)
  | Unknown

(* Is [m] the canonical low mask of some byte width? *)
let low_mask_width m =
  let rec check w =
    if w > 32 then None
    else if U256.equal m (U256.pred (U256.shift_left U256.one (8 * w))) then
      Some w
    else check (w + 1)
  in
  check 1

let profile code =
  let reads : read_rec list ref = ref [] in
  let writes : access list ref = ref [] in
  let record_read slot =
    let r = { r_slot = slot; r_offset = 0; r_width = 32; r_guards = false } in
    reads := r :: !reads;
    r
  in
  let record_write slot ~offset ~width =
    writes :=
      {
        a_slot = slot;
        a_offset = offset;
        a_width = width;
        a_kind = Write;
        a_guards_caller = false;
      }
      :: !writes
  in
  (* Width of a stored value, CRUSH's type inference at the write site. *)
  let rec write_shape = function
    | Or_v (a, b) -> (
        (* A read-modify-write merge: take the inserted component. *)
        match (write_shape_opt a, write_shape_opt b) with
        | Some s, None | None, Some s -> Some s
        | Some s, Some _ -> Some s
        | None, None -> None)
    | Shifted_left (v, k) -> (
        match write_shape v with
        | Some (off, w) -> Some (off + k, w)
        | None -> Some (k, 32 - k))
    | Masked (_, w) -> Some (0, w)
    | Caller_v -> Some (0, 20)
    | Sload_v r -> Some (r.r_offset, r.r_width)
    | _ -> None
  and write_shape_opt v =
    match v with
    | Or_v _ | Shifted_left _ | Masked _ | Caller_v -> write_shape v
    | _ -> None
  in
  let involves_caller v =
    let rec go = function
      | Caller_v -> true
      | Masked (v, _) | Shifted_left (v, _) -> go v
      | Or_v (a, b) -> go a || go b
      | _ -> false
    in
    go v
  in
  let mark_guard v =
    let rec go = function
      | Sload_v r -> r.r_guards <- true
      | Masked (v, _) | Shifted_left (v, _) -> go v
      | Or_v (a, b) ->
          go a;
          go b
      | _ -> ()
    in
    go v
  in
  let run_block ~entry_stack instrs =
    let stack = ref entry_stack in
    let memory : (int, sv) Hashtbl.t = Hashtbl.create 8 in
    let push v = stack := v :: !stack in
    let pop () =
      match !stack with
      | [] -> Unknown
      | v :: rest ->
          stack := rest;
          v
    in
    let step (i : Disasm.instr) =
      match i.Disasm.opcode with
      | Opcode.PUSH _ -> push (Known (Disasm.operand_value i))
      | Opcode.PUSH0 -> push (Known U256.zero)
      | Opcode.CALLER -> push Caller_v
      | Opcode.DUP n ->
          let v = try List.nth !stack (n - 1) with _ -> Unknown in
          push v
      | Opcode.SWAP n ->
          let arr = Array.of_list !stack in
          if Array.length arr > n then begin
            let tmp = arr.(0) in
            arr.(0) <- arr.(n);
            arr.(n) <- tmp;
            stack := Array.to_list arr
          end
      | Opcode.POP -> ignore (pop ())
      | Opcode.AND -> (
          let a = pop () in
          let b = pop () in
          match (a, b) with
          | Known m, v | v, Known m -> (
              match low_mask_width m with
              | Some w -> (
                  (* Low mask: refines a read's width or types a value. *)
                  (match v with
                  | Sload_v r -> r.r_width <- min r.r_width w
                  | _ -> ());
                  push (Masked (v, w)))
              | None -> (
                  match v with
                  | Sload_v _ ->
                      (* Clearing mask of a read-modify-write; the paired
                         OR supplies the inserted value. *)
                      push v
                  | _ -> push Unknown))
          | _ -> push Unknown)
      | Opcode.OR ->
          let a = pop () in
          let b = pop () in
          push (Or_v (a, b))
      | Opcode.SHR -> (
          let shift = pop () in
          let v = pop () in
          match (shift, v) with
          | Known k, Sload_v r when U256.to_int k <> None ->
              let bytes = Option.get (U256.to_int k) / 8 in
              r.r_offset <- r.r_offset + bytes;
              if r.r_width = 32 then r.r_width <- 32 - bytes;
              push v
          | _ -> push Unknown)
      | Opcode.SHL -> (
          let shift = pop () in
          let v = pop () in
          match shift with
          | Known k when U256.to_int k <> None ->
              push (Shifted_left (v, Option.get (U256.to_int k) / 8))
          | _ -> push Unknown)
      | Opcode.EQ ->
          let a = pop () in
          let b = pop () in
          if involves_caller a then mark_guard b;
          if involves_caller b then mark_guard a;
          push Unknown
      | Opcode.SLOAD -> (
          let slot = pop () in
          match slot with
          | Known s -> push (Sload_v (record_read (Fixed s)))
          | Hash_v (Some base) -> push (Sload_v (record_read (Mapping base)))
          | _ -> push Unknown)
      | Opcode.SSTORE -> (
          let slot = pop () in
          let value = pop () in
          let slot_id =
            match slot with
            | Known s -> Some (Fixed s)
            | Hash_v (Some base) -> Some (Mapping base)
            | _ -> None
          in
          match slot_id with
          | None -> ()
          | Some sid ->
              let offset, width =
                match write_shape value with
                | Some (off, w) -> (off, w)
                | None -> (0, 32)
              in
              record_write sid ~offset ~width)
      | Opcode.MSTORE -> (
          let off = pop () in
          let v = pop () in
          match off with
          | Known o when U256.to_int o <> None ->
              Hashtbl.replace memory (Option.get (U256.to_int o)) v
          | _ -> ())
      | Opcode.KECCAK256 -> (
          let off = pop () in
          let len = pop () in
          match (off, len) with
          | Known o, Known l
            when U256.to_int o <> None && U256.equal l (U256.of_int 0x40) -> (
              (* Solidity mapping-slot derivation: the base slot word sits
                 32 bytes above the key. *)
              let base_off = Option.get (U256.to_int o) + 32 in
              match Hashtbl.find_opt memory base_off with
              | Some (Known base) -> push (Hash_v (Some base))
              | _ -> push (Hash_v None))
          | _ -> push (Hash_v None))
      | op ->
          let consumed, produced = Opcode.stack_arity op in
          for _ = 1 to consumed do
            ignore (pop ())
          done;
          for _ = 1 to produced do
            push Unknown
          done
    in
    List.iter step instrs;
    !stack
  in
  (* Propagate symbolic stacks along statically resolved CFG edges
     (first-predecessor-wins; unknown edges contribute an empty stack, so
     unreached or dynamically-reached blocks degrade to the conservative
     per-block behaviour rather than being skipped). *)
  let cfg = Evm.Cfg.build code in
  let entry_stacks : (int, sv list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Evm.Cfg.block) ->
      let entry_stack =
        Option.value ~default:[] (Hashtbl.find_opt entry_stacks b.Evm.Cfg.b_entry)
      in
      let exit_stack = run_block ~entry_stack b.Evm.Cfg.b_instrs in
      List.iter
        (function
          | Evm.Cfg.Jump_to d | Evm.Cfg.Fallthrough d ->
              if not (Hashtbl.mem entry_stacks d) then
                Hashtbl.replace entry_stacks d exit_stack
          | Evm.Cfg.Unknown -> ())
        b.Evm.Cfg.b_succs)
    (Evm.Cfg.blocks cfg);
  let read_accesses =
    List.rev_map
      (fun r ->
        {
          a_slot = r.r_slot;
          a_offset = r.r_offset;
          a_width = r.r_width;
          a_kind = Read;
          a_guards_caller = r.r_guards;
        })
      !reads
  in
  let all = read_accesses @ List.rev !writes in
  (* Deduplicate identical records. *)
  List.sort_uniq compare all

let reads accesses = List.filter (fun a -> a.a_kind = Read) accesses
let writes accesses = List.filter (fun a -> a.a_kind = Write) accesses

let accesses_of_slot accesses slot =
  List.filter (fun a -> slot_id_compare a.a_slot slot = 0) accesses

let slots accesses =
  let seen = ref [] in
  List.iter
    (fun a ->
      if not (List.exists (fun s -> slot_id_compare s a.a_slot = 0) !seen) then
        seen := a.a_slot :: !seen)
    accesses;
  List.rev !seen
