module Ast = Minisol.Ast
module Layout = Minisol.Layout
module Address = Evm.Address
module Interp = Evm.Interp
module Host = Evm.Host

type side =
  | Source of Ast.contract
  | Bytecode of string

type region = {
  g_offset : int;
  g_width : int;
  g_reads : bool;
  g_writes : bool;
  g_guards_caller : bool;
}

type collision = {
  slot : Storage_access.slot_id;
  proxy_region : region;
  logic_region : region;
  sensitive : bool;
  verified : bool;
}

(* ------------------------------------------------------------------ *)
(* Source-side region recovery: layout + usage scan                    *)
(* ------------------------------------------------------------------ *)

type usage = {
  mutable u_reads : bool;
  mutable u_writes : bool;
  mutable u_guards : bool;
}

let fresh_usage () = { u_reads = false; u_writes = false; u_guards = false }

(* Usage scan over the AST: which variables and raw slots are actually
   accessed, and which participate in caller checks. *)
let scan_contract (c : Ast.contract) =
  let vars : (string, usage) Hashtbl.t = Hashtbl.create 8 in
  let raw : (U256.t, usage * int) Hashtbl.t = Hashtbl.create 4 in
  let var_usage name =
    match Hashtbl.find_opt vars name with
    | Some u -> u
    | None ->
        let u = fresh_usage () in
        Hashtbl.replace vars name u;
        u
  in
  let raw_usage slot width =
    match Hashtbl.find_opt raw slot with
    | Some (u, w) ->
        if width > w then Hashtbl.replace raw slot (u, width);
        u
    | None ->
        let u = fresh_usage () in
        Hashtbl.replace raw slot (u, width);
        u
  in
  let rec expr_width params (e : Ast.expr) =
    match e with
    | Ast.Caller | Ast.Self | Ast.Const_addr _ -> 20
    | Ast.Param i -> (
        match List.nth_opt params i with
        | Some p -> Ast.type_size p.Ast.p_ty
        | None -> 32)
    | Ast.Load name -> (
        match List.find_opt (fun v -> v.Ast.v_name = name) c.Ast.c_vars with
        | Some v -> Ast.type_size v.Ast.v_ty
        | None -> 32)
    | Ast.Not e -> expr_width params e
    | _ -> 32
  in
  let rec scan_expr params (e : Ast.expr) =
    match e with
    | Ast.Load name -> (var_usage name).u_reads <- true
    | Ast.Map_load (name, k) ->
        (var_usage name).u_reads <- true;
        scan_expr params k
    | Ast.Load_slot slot -> (raw_usage slot 20).u_reads <- true
    | Ast.Not e -> scan_expr params e
    | Ast.Bin (op, a, b) ->
        (* Caller-equality guards mark the other operand. *)
        (if op = Ast.Eq then
           let mark = function
             | Ast.Load name -> (var_usage name).u_guards <- true
             | Ast.Load_slot slot -> (raw_usage slot 20).u_guards <- true
             | _ -> ()
           in
           match (a, b) with
           | Ast.Caller, other | other, Ast.Caller -> mark other
           | _ -> ());
        scan_expr params a;
        scan_expr params b
    | Ast.Const _ | Ast.Const_addr _ | Ast.Param _ | Ast.Cd_selector
    | Ast.Caller | Ast.Callvalue | Ast.Timestamp | Ast.Blocknumber
    | Ast.Self | Ast.Selfbalance | Ast.Local _ ->
        ()
  in
  let rec scan_stmt params (s : Ast.stmt) =
    match s with
    | Ast.Store (name, e) ->
        (var_usage name).u_writes <- true;
        scan_expr params e
    | Ast.Map_store (name, k, v) ->
        (var_usage name).u_writes <- true;
        scan_expr params k;
        scan_expr params v
    | Ast.Store_slot (slot, e) ->
        (raw_usage slot (expr_width params e)).u_writes <- true;
        scan_expr params e
    | Ast.Require e | Ast.Return_value e -> scan_expr params e
    | Ast.Stop | Ast.Revert -> ()
    | Ast.Transfer (a, b) ->
        scan_expr params a;
        scan_expr params b
    | Ast.Call_sig (t, _, args) | Ast.Delegate_sig (t, _, args) ->
        scan_expr params t;
        List.iter (scan_expr params) args
    | Ast.Emit (_, args) -> List.iter (scan_expr params) args
    | Ast.Let (_, e) -> scan_expr params e
    | Ast.While (cond, body) ->
        scan_expr params cond;
        List.iter (scan_stmt params) body
    | Ast.Delegate_forward target -> (
        match target with
        | Ast.To_var name -> (var_usage name).u_reads <- true
        | Ast.To_slot slot -> (raw_usage slot 20).u_reads <- true
        | Ast.To_fixed _ -> ()
        | Ast.To_facet name -> (var_usage name).u_reads <- true
        | Ast.To_beacon slot -> (raw_usage slot 20).u_reads <- true)
    | Ast.If (cond, then_, else_) ->
        scan_expr params cond;
        List.iter (scan_stmt params) then_;
        List.iter (scan_stmt params) else_
  in
  List.iter
    (fun f -> List.iter (scan_stmt f.Ast.f_params) f.Ast.f_body)
    c.Ast.c_funcs;
  (match c.Ast.c_fallback with
  | Some body -> List.iter (scan_stmt []) body
  | None -> ());
  List.iter (scan_stmt []) c.Ast.c_ctor;
  (vars, raw)

let regions_of_source (c : Ast.contract) =
  let vars, raw = scan_contract c in
  let layout = Layout.of_contract c in
  let from_vars =
    List.filter_map
      (fun (e : Layout.entry) ->
        match Hashtbl.find_opt vars e.Layout.e_var.Ast.v_name with
        | None -> None (* never accessed: storage padding *)
        | Some u ->
            let slot_id =
              match e.Layout.e_var.Ast.v_ty with
              | Ast.T_mapping (_, value_ty) ->
                  ignore value_ty;
                  Storage_access.Mapping (U256.of_int e.Layout.e_slot)
              | _ -> Storage_access.Fixed (U256.of_int e.Layout.e_slot)
            in
            let width =
              match e.Layout.e_var.Ast.v_ty with
              | Ast.T_mapping (_, value_ty) -> Ast.type_size value_ty
              | _ -> e.Layout.e_size
            in
            Some
              ( slot_id,
                {
                  g_offset = (match slot_id with Storage_access.Mapping _ -> 0 | _ -> e.Layout.e_offset);
                  g_width = width;
                  g_reads = u.u_reads;
                  g_writes = u.u_writes;
                  g_guards_caller = u.u_guards;
                } ))
      layout
  in
  let from_raw =
    Hashtbl.fold
      (fun slot (u, width) acc ->
        ( Storage_access.Fixed slot,
          {
            g_offset = 0;
            g_width = width;
            g_reads = u.u_reads;
            g_writes = u.u_writes;
            g_guards_caller = u.u_guards;
          } )
        :: acc)
      raw []
  in
  from_vars @ from_raw

(* ------------------------------------------------------------------ *)
(* Bytecode-side region recovery                                       *)
(* ------------------------------------------------------------------ *)

let regions_of_bytecode code =
  let accesses = Storage_access.profile code in
  (* Merge accesses with the same slot/offset/width into one region. *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun (a : Storage_access.access) ->
      let key = (a.Storage_access.a_slot, a.Storage_access.a_offset, a.Storage_access.a_width) in
      let r =
        match Hashtbl.find_opt table key with
        | Some r -> r
        | None ->
            let r =
              {
                g_offset = a.Storage_access.a_offset;
                g_width = a.Storage_access.a_width;
                g_reads = false;
                g_writes = false;
                g_guards_caller = false;
              }
            in
            Hashtbl.replace table key r;
            r
      in
      let r =
        {
          r with
          g_reads = r.g_reads || a.Storage_access.a_kind = Storage_access.Read;
          g_writes = r.g_writes || a.Storage_access.a_kind = Storage_access.Write;
          g_guards_caller = r.g_guards_caller || a.Storage_access.a_guards_caller;
        }
      in
      Hashtbl.replace table key r)
    accesses;
  Hashtbl.fold (fun (slot, _, _) r acc -> (slot, r) :: acc) table []

let group_by_slot pairs =
  let slots = ref [] in
  List.iter
    (fun (slot, _) ->
      if
        not
          (List.exists (fun s -> Storage_access.slot_id_compare s slot = 0) !slots)
      then slots := slot :: !slots)
    pairs;
  List.rev_map
    (fun slot ->
      ( slot,
        List.filter_map
          (fun (s, r) ->
            if Storage_access.slot_id_compare s slot = 0 then Some r else None)
          pairs ))
    !slots

let regions_of_side = function
  | Source c -> group_by_slot (regions_of_source c)
  | Bytecode code -> group_by_slot (regions_of_bytecode code)

(* ------------------------------------------------------------------ *)
(* Pairwise comparison                                                 *)
(* ------------------------------------------------------------------ *)

let ranges_overlap a b =
  a.g_offset < b.g_offset + b.g_width && b.g_offset < a.g_offset + a.g_width

let typing_differs a b = a.g_offset <> b.g_offset || a.g_width <> b.g_width

let detect ~proxy ~logic =
  let proxy_slots = regions_of_side proxy in
  let logic_slots = regions_of_side logic in
  List.concat_map
    (fun (slot, proxy_regions) ->
      match
        List.find_opt
          (fun (s, _) -> Storage_access.slot_id_compare s slot = 0)
          logic_slots
      with
      | None -> []
      | Some (_, logic_regions) ->
          List.concat_map
            (fun pr ->
              List.filter_map
                (fun lr ->
                  let cross_write =
                    (pr.g_writes && (lr.g_reads || lr.g_writes))
                    || (lr.g_writes && (pr.g_reads || pr.g_writes))
                  in
                  if
                    ranges_overlap pr lr && typing_differs pr lr && cross_write
                  then
                    Some
                      {
                        slot;
                        proxy_region = pr;
                        logic_region = lr;
                        sensitive = pr.g_guards_caller || lr.g_guards_caller;
                        verified = false;
                      }
                  else None)
                logic_regions)
            proxy_regions)
    proxy_slots

let has_collision ~proxy ~logic = detect ~proxy ~logic <> []

(* ------------------------------------------------------------------ *)
(* Exploit verification                                                *)
(* ------------------------------------------------------------------ *)

let attacker = Address.of_hex "0x00000000000000000000000000000000a77ac4e2"

let region_bytes value r =
  U256.logand
    (U256.shift_right value (8 * r.g_offset))
    (U256.pred (U256.shift_left U256.one (8 * r.g_width)))

let verify ~chain ~proxy_address ~logic_address collisions =
  let host = Chain.host_at_head chain in
  let logic_code = Chain.code_at chain logic_address in
  let selectors = Selector_extract.dispatcher_selectors logic_code in
  let attacker_word = U256.to_bytes_be (Address.to_u256 attacker) in
  let try_exploit (c : collision) =
    match c.slot with
    | Storage_access.Mapping _ -> c (* element slots are unenumerable *)
    | Storage_access.Fixed slot ->
        let changed =
          List.exists
            (fun sel ->
              let snapshot = host.Host.snapshot () in
              let before = host.Host.get_storage proxy_address slot in
              let input = sel ^ attacker_word ^ String.make 32 '\000' in
              let result =
                Interp.execute ~step_limit:200_000 host
                  (Interp.make_call ~caller:attacker ~target:proxy_address
                     ~input ())
              in
              let after = host.Host.get_storage proxy_address slot in
              let mutated =
                Interp.succeeded result
                && not
                     (U256.equal
                        (region_bytes before c.proxy_region)
                        (region_bytes after c.proxy_region))
              in
              host.Host.revert_to snapshot;
              mutated)
            selectors
        in
        { c with verified = changed }
  in
  List.map try_exploit collisions
