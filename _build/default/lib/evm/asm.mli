(** A small EVM assembler with symbolic labels.

    The mini-compiler and the test suite build bytecode from these items;
    labels resolve to PUSH2 offsets in a second pass, matching solc's use of
    2-byte jump targets. *)

type item =
  | Op of Opcode.t  (** A bare opcode ([Op (PUSH n)] is rejected: use the
                        dedicated push items so operands stay attached). *)
  | Push of string  (** PUSHn sized by the operand (1-32 bytes). *)
  | Push_int of int  (** Minimal-width PUSH of a non-negative int. *)
  | Push_u256 of U256.t  (** Minimal-width PUSH (PUSH1 0x00 for zero). *)
  | Push_label of string  (** PUSH2 of a label's resolved offset. *)
  | Label of string  (** Marks a position; emits nothing by itself. *)
  | Jumpdest of string  (** JUMPDEST carrying a label. *)
  | Raw of string  (** Verbatim bytes (data sections, embedded addresses). *)

val assemble : item list -> string
(** Two-pass assembly.  Raises [Invalid_argument] on duplicate or undefined
    labels, oversized operands, or a direct [Op (PUSH _)]. *)

val concat : item list list -> item list
(** Flatten program fragments. *)
