(** Control-flow graph recovery over EVM bytecode.

    Blocks come from {!Disasm.basic_blocks}; edges are resolved statically
    where the jump target is a PUSH immediately feeding the JUMP/JUMPI —
    the pattern every solc-style compiler emits.  Dynamically computed
    targets are kept as {!Unknown} edges, so traversals over-approximate
    rather than miss. *)

type successor =
  | Jump_to of int  (** Statically resolved jump target offset. *)
  | Fallthrough of int  (** Next-instruction continuation. *)
  | Unknown  (** Dynamic jump: target not statically visible. *)

type block = {
  b_entry : int;  (** Offset of the block's first instruction. *)
  b_instrs : Disasm.instr list;
  b_succs : successor list;
}

type t

val build : string -> t
val blocks : t -> block list
val block_at : t -> int -> block option
(** Block whose entry offset is exactly the given offset. *)

val reachable_from : t -> int -> block list
(** Blocks reachable from the given entry offset along resolved edges
    (Unknown edges contribute nothing), in visit order.  Empty when the
    offset is not a block entry. *)

val reachable_instrs : t -> int -> Disasm.instr list
(** Concatenated instructions of {!reachable_from}. *)
