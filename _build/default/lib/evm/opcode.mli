(** The EVM instruction set (Shanghai era), with the byte encodings and
    stack-arity metadata the disassembler and interpreter share. *)

type t =
  | STOP
  | ADD
  | MUL
  | SUB
  | DIV
  | SDIV
  | MOD
  | SMOD
  | ADDMOD
  | MULMOD
  | EXP
  | SIGNEXTEND
  | LT
  | GT
  | SLT
  | SGT
  | EQ
  | ISZERO
  | AND
  | OR
  | XOR
  | NOT
  | BYTE
  | SHL
  | SHR
  | SAR
  | KECCAK256
  | ADDRESS
  | BALANCE
  | ORIGIN
  | CALLER
  | CALLVALUE
  | CALLDATALOAD
  | CALLDATASIZE
  | CALLDATACOPY
  | CODESIZE
  | CODECOPY
  | GASPRICE
  | EXTCODESIZE
  | EXTCODECOPY
  | RETURNDATASIZE
  | RETURNDATACOPY
  | EXTCODEHASH
  | BLOCKHASH
  | COINBASE
  | TIMESTAMP
  | NUMBER
  | PREVRANDAO  (** Formerly DIFFICULTY (byte 0x44). *)
  | GASLIMIT
  | CHAINID
  | SELFBALANCE
  | BASEFEE
  | POP
  | MLOAD
  | MSTORE
  | MSTORE8
  | SLOAD
  | SSTORE
  | JUMP
  | JUMPI
  | PC
  | MSIZE
  | GAS
  | JUMPDEST
  | PUSH0
  | PUSH of int  (** [PUSH n] with [1 <= n <= 32]. *)
  | DUP of int  (** [DUP n] with [1 <= n <= 16]. *)
  | SWAP of int  (** [SWAP n] with [1 <= n <= 16]. *)
  | LOG of int  (** [LOG n] with [0 <= n <= 4]. *)
  | CREATE
  | CALL
  | CALLCODE
  | RETURN
  | DELEGATECALL
  | CREATE2
  | STATICCALL
  | REVERT
  | INVALID
  | SELFDESTRUCT
  | UNKNOWN of int  (** Any unassigned byte. *)

val of_byte : int -> t
(** Total: unassigned bytes map to [UNKNOWN]. *)

val to_byte : t -> int
val name : t -> string

val push_size : t -> int
(** Operand length in bytes: [n] for [PUSH n], 0 otherwise. *)

val stack_arity : t -> int * int
(** [(consumed, produced)] stack items.  [UNKNOWN] reports [(0, 0)]. *)

val is_terminator : t -> bool
(** True for instructions that end a basic block: [STOP], [RETURN],
    [REVERT], [INVALID], [SELFDESTRUCT], [JUMP] (and [UNKNOWN], which
    aborts execution). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
