type value =
  | Uint of U256.t
  | Int of U256.t
  | Addr of Address.t
  | Bool of bool
  | Fixed_bytes of string
  | Bytes of string

let word_of = function
  | Uint v | Int v -> U256.to_bytes_be v
  | Addr a -> U256.to_bytes_be (Address.to_u256 a)
  | Bool b -> U256.to_bytes_be (if b then U256.one else U256.zero)
  | Fixed_bytes s ->
      if String.length s > 32 then invalid_arg "Abi: fixed bytes beyond 32";
      Hexutil.pad_right 32 '\000' s
  | Bytes _ -> invalid_arg "Abi.word_of: dynamic value"

let is_dynamic = function Bytes _ -> true | _ -> false

let pad32 s =
  let r = String.length s mod 32 in
  if r = 0 then s else s ^ String.make (32 - r) '\000'

let encode_args values =
  let head_size = 32 * List.length values in
  let tail = Buffer.create 64 in
  let head = Buffer.create 64 in
  List.iter
    (fun v ->
      if is_dynamic v then begin
        Buffer.add_string head
          (U256.to_bytes_be (U256.of_int (head_size + Buffer.length tail)));
        match v with
        | Bytes b ->
            Buffer.add_string tail (U256.to_bytes_be (U256.of_int (String.length b)));
            Buffer.add_string tail (pad32 b)
        | _ -> assert false
      end
      else Buffer.add_string head (word_of v))
    values;
  Buffer.contents head ^ Buffer.contents tail

let selector = Keccak.selector
let encode_call ~signature values = selector signature ^ encode_args values
let decode_uint data = U256.of_bytes_be (Hexutil.slice data 0 32)
let decode_address data = Address.of_u256 (decode_uint data)
let decode_bool data = not (U256.is_zero (decode_uint data))

let random_selector ~unavailable ~seed =
  let rec try_candidate n =
    let candidate = String.sub (Keccak.digest (Printf.sprintf "proxion-probe-%d-%d" seed n)) 0 4 in
    if List.mem candidate unavailable then try_candidate (n + 1) else candidate
  in
  try_candidate 0
