type node = {
  t_kind : string;
  t_from : Address.t;
  t_code : Address.t;
  t_context : Address.t;
  t_input : string;
  t_value : U256.t;
  t_status : string;
  t_sloads : (Address.t * U256.t * U256.t) list;
  t_sstores : (Address.t * U256.t * U256.t) list;
  t_children : node list;
}

(* A frame under construction; children/accesses accumulate in reverse. *)
type frame = {
  f_kind : string;
  f_from : Address.t;
  f_code : Address.t;
  f_context : Address.t;
  f_input : string;
  f_value : U256.t;
  mutable f_status : string;
  mutable f_sloads : (Address.t * U256.t * U256.t) list;
  mutable f_sstores : (Address.t * U256.t * U256.t) list;
  mutable f_children : node list;
}

type capture = { mutable stack : frame list }

let new_frame ~kind ~from ~code ~context ~input ~value =
  {
    f_kind = kind;
    f_from = from;
    f_code = code;
    f_context = context;
    f_input = input;
    f_value = value;
    f_status = "running";
    f_sloads = [];
    f_sstores = [];
    f_children = [];
  }

let node_of_frame f =
  {
    t_kind = f.f_kind;
    t_from = f.f_from;
    t_code = f.f_code;
    t_context = f.f_context;
    t_input = f.f_input;
    t_value = f.f_value;
    t_status = f.f_status;
    t_sloads = List.rev f.f_sloads;
    t_sstores = List.rev f.f_sstores;
    t_children = List.rev f.f_children;
  }

let make ~caller ~target ~input =
  let root =
    new_frame ~kind:"TX" ~from:caller ~code:target ~context:target ~input
      ~value:U256.zero
  in
  { stack = [ root ] }

let status_string = function
  | Interp.Returned -> "returned"
  | Interp.Reverted -> "reverted"
  | Interp.Failed e -> "failed: " ^ Interp.error_to_string e

let tracer capture =
  let top () = match capture.stack with f :: _ -> Some f | [] -> None in
  {
    Interp.no_tracer with
    Interp.on_call =
      (fun ev ->
        let frame =
          new_frame
            ~kind:(Interp.call_kind_to_string ev.Interp.kind)
            ~from:ev.Interp.initiator ~code:ev.Interp.code_address
            ~context:ev.Interp.context_address ~input:ev.Interp.input
            ~value:ev.Interp.value
        in
        capture.stack <- frame :: capture.stack);
    Interp.on_call_result =
      (fun _ status ->
        match capture.stack with
        | child :: (parent :: _ as rest) ->
            child.f_status <- status_string status;
            parent.f_children <- node_of_frame child :: parent.f_children;
            capture.stack <- rest
        | _ -> ());
    Interp.on_sload =
      (fun addr slot value ->
        match top () with
        | Some f -> f.f_sloads <- (addr, slot, value) :: f.f_sloads
        | None -> ());
    Interp.on_sstore =
      (fun addr slot value ->
        match top () with
        | Some f -> f.f_sstores <- (addr, slot, value) :: f.f_sstores
        | None -> ());
  }

let finish capture result =
  match capture.stack with
  | [ root ] ->
      root.f_status <- status_string result.Interp.status;
      node_of_frame root
  | _ ->
      (* Unbalanced events (aborted frames): collapse whatever remains. *)
      let rec collapse = function
        | [ root ] ->
            root.f_status <- status_string result.Interp.status;
            node_of_frame root
        | child :: (parent :: _ as rest) ->
            parent.f_children <- node_of_frame child :: parent.f_children;
            collapse rest
        | [] -> assert false
      in
      collapse capture.stack

let run ?(gas = 30_000_000) host ~caller ~target ~input =
  let capture = make ~caller ~target ~input in
  let result =
    Interp.execute ~tracer:(tracer capture) host
      (Interp.make_call ~caller ~target ~input ~gas ())
  in
  (result, finish capture result)

let short_hex ?(max_bytes = 8) s =
  if String.length s <= max_bytes then Hexutil.to_hex s
  else Hexutil.to_hex (Hexutil.take max_bytes s) ^ "..."

let pp fmt node =
  let rec go indent n =
    Format.fprintf fmt "%s%s %s -> code %s (ctx %s) input %s%s [%s]@."
      (String.make indent ' ') n.t_kind (Address.to_hex n.t_from)
      (Address.to_hex n.t_code)
      (Address.to_hex n.t_context)
      (short_hex n.t_input)
      (if U256.is_zero n.t_value then ""
       else " value " ^ U256.to_decimal n.t_value)
      n.t_status;
    List.iter
      (fun (_, slot, v) ->
        Format.fprintf fmt "%s  sload  %s = %s@."
          (String.make indent ' ')
          (U256.to_hex slot) (U256.to_hex v))
      n.t_sloads;
    List.iter
      (fun (_, slot, v) ->
        Format.fprintf fmt "%s  sstore %s = %s@."
          (String.make indent ' ')
          (U256.to_hex slot) (U256.to_hex v))
      n.t_sstores;
    List.iter (go (indent + 2)) n.t_children
  in
  go 0 node

let to_string node = Format.asprintf "%a" pp node
