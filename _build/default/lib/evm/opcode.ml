type t =
  | STOP
  | ADD
  | MUL
  | SUB
  | DIV
  | SDIV
  | MOD
  | SMOD
  | ADDMOD
  | MULMOD
  | EXP
  | SIGNEXTEND
  | LT
  | GT
  | SLT
  | SGT
  | EQ
  | ISZERO
  | AND
  | OR
  | XOR
  | NOT
  | BYTE
  | SHL
  | SHR
  | SAR
  | KECCAK256
  | ADDRESS
  | BALANCE
  | ORIGIN
  | CALLER
  | CALLVALUE
  | CALLDATALOAD
  | CALLDATASIZE
  | CALLDATACOPY
  | CODESIZE
  | CODECOPY
  | GASPRICE
  | EXTCODESIZE
  | EXTCODECOPY
  | RETURNDATASIZE
  | RETURNDATACOPY
  | EXTCODEHASH
  | BLOCKHASH
  | COINBASE
  | TIMESTAMP
  | NUMBER
  | PREVRANDAO
  | GASLIMIT
  | CHAINID
  | SELFBALANCE
  | BASEFEE
  | POP
  | MLOAD
  | MSTORE
  | MSTORE8
  | SLOAD
  | SSTORE
  | JUMP
  | JUMPI
  | PC
  | MSIZE
  | GAS
  | JUMPDEST
  | PUSH0
  | PUSH of int
  | DUP of int
  | SWAP of int
  | LOG of int
  | CREATE
  | CALL
  | CALLCODE
  | RETURN
  | DELEGATECALL
  | CREATE2
  | STATICCALL
  | REVERT
  | INVALID
  | SELFDESTRUCT
  | UNKNOWN of int

let of_byte b =
  match b with
  | 0x00 -> STOP
  | 0x01 -> ADD
  | 0x02 -> MUL
  | 0x03 -> SUB
  | 0x04 -> DIV
  | 0x05 -> SDIV
  | 0x06 -> MOD
  | 0x07 -> SMOD
  | 0x08 -> ADDMOD
  | 0x09 -> MULMOD
  | 0x0a -> EXP
  | 0x0b -> SIGNEXTEND
  | 0x10 -> LT
  | 0x11 -> GT
  | 0x12 -> SLT
  | 0x13 -> SGT
  | 0x14 -> EQ
  | 0x15 -> ISZERO
  | 0x16 -> AND
  | 0x17 -> OR
  | 0x18 -> XOR
  | 0x19 -> NOT
  | 0x1a -> BYTE
  | 0x1b -> SHL
  | 0x1c -> SHR
  | 0x1d -> SAR
  | 0x20 -> KECCAK256
  | 0x30 -> ADDRESS
  | 0x31 -> BALANCE
  | 0x32 -> ORIGIN
  | 0x33 -> CALLER
  | 0x34 -> CALLVALUE
  | 0x35 -> CALLDATALOAD
  | 0x36 -> CALLDATASIZE
  | 0x37 -> CALLDATACOPY
  | 0x38 -> CODESIZE
  | 0x39 -> CODECOPY
  | 0x3a -> GASPRICE
  | 0x3b -> EXTCODESIZE
  | 0x3c -> EXTCODECOPY
  | 0x3d -> RETURNDATASIZE
  | 0x3e -> RETURNDATACOPY
  | 0x3f -> EXTCODEHASH
  | 0x40 -> BLOCKHASH
  | 0x41 -> COINBASE
  | 0x42 -> TIMESTAMP
  | 0x43 -> NUMBER
  | 0x44 -> PREVRANDAO
  | 0x45 -> GASLIMIT
  | 0x46 -> CHAINID
  | 0x47 -> SELFBALANCE
  | 0x48 -> BASEFEE
  | 0x50 -> POP
  | 0x51 -> MLOAD
  | 0x52 -> MSTORE
  | 0x53 -> MSTORE8
  | 0x54 -> SLOAD
  | 0x55 -> SSTORE
  | 0x56 -> JUMP
  | 0x57 -> JUMPI
  | 0x58 -> PC
  | 0x59 -> MSIZE
  | 0x5a -> GAS
  | 0x5b -> JUMPDEST
  | 0x5f -> PUSH0
  | b when b >= 0x60 && b <= 0x7f -> PUSH (b - 0x5f)
  | b when b >= 0x80 && b <= 0x8f -> DUP (b - 0x7f)
  | b when b >= 0x90 && b <= 0x9f -> SWAP (b - 0x8f)
  | b when b >= 0xa0 && b <= 0xa4 -> LOG (b - 0xa0)
  | 0xf0 -> CREATE
  | 0xf1 -> CALL
  | 0xf2 -> CALLCODE
  | 0xf3 -> RETURN
  | 0xf4 -> DELEGATECALL
  | 0xf5 -> CREATE2
  | 0xfa -> STATICCALL
  | 0xfd -> REVERT
  | 0xfe -> INVALID
  | 0xff -> SELFDESTRUCT
  | b -> UNKNOWN b

let to_byte = function
  | STOP -> 0x00
  | ADD -> 0x01
  | MUL -> 0x02
  | SUB -> 0x03
  | DIV -> 0x04
  | SDIV -> 0x05
  | MOD -> 0x06
  | SMOD -> 0x07
  | ADDMOD -> 0x08
  | MULMOD -> 0x09
  | EXP -> 0x0a
  | SIGNEXTEND -> 0x0b
  | LT -> 0x10
  | GT -> 0x11
  | SLT -> 0x12
  | SGT -> 0x13
  | EQ -> 0x14
  | ISZERO -> 0x15
  | AND -> 0x16
  | OR -> 0x17
  | XOR -> 0x18
  | NOT -> 0x19
  | BYTE -> 0x1a
  | SHL -> 0x1b
  | SHR -> 0x1c
  | SAR -> 0x1d
  | KECCAK256 -> 0x20
  | ADDRESS -> 0x30
  | BALANCE -> 0x31
  | ORIGIN -> 0x32
  | CALLER -> 0x33
  | CALLVALUE -> 0x34
  | CALLDATALOAD -> 0x35
  | CALLDATASIZE -> 0x36
  | CALLDATACOPY -> 0x37
  | CODESIZE -> 0x38
  | CODECOPY -> 0x39
  | GASPRICE -> 0x3a
  | EXTCODESIZE -> 0x3b
  | EXTCODECOPY -> 0x3c
  | RETURNDATASIZE -> 0x3d
  | RETURNDATACOPY -> 0x3e
  | EXTCODEHASH -> 0x3f
  | BLOCKHASH -> 0x40
  | COINBASE -> 0x41
  | TIMESTAMP -> 0x42
  | NUMBER -> 0x43
  | PREVRANDAO -> 0x44
  | GASLIMIT -> 0x45
  | CHAINID -> 0x46
  | SELFBALANCE -> 0x47
  | BASEFEE -> 0x48
  | POP -> 0x50
  | MLOAD -> 0x51
  | MSTORE -> 0x52
  | MSTORE8 -> 0x53
  | SLOAD -> 0x54
  | SSTORE -> 0x55
  | JUMP -> 0x56
  | JUMPI -> 0x57
  | PC -> 0x58
  | MSIZE -> 0x59
  | GAS -> 0x5a
  | JUMPDEST -> 0x5b
  | PUSH0 -> 0x5f
  | PUSH n -> 0x5f + n
  | DUP n -> 0x7f + n
  | SWAP n -> 0x8f + n
  | LOG n -> 0xa0 + n
  | CREATE -> 0xf0
  | CALL -> 0xf1
  | CALLCODE -> 0xf2
  | RETURN -> 0xf3
  | DELEGATECALL -> 0xf4
  | CREATE2 -> 0xf5
  | STATICCALL -> 0xfa
  | REVERT -> 0xfd
  | INVALID -> 0xfe
  | SELFDESTRUCT -> 0xff
  | UNKNOWN b -> b

let name = function
  | STOP -> "STOP"
  | ADD -> "ADD"
  | MUL -> "MUL"
  | SUB -> "SUB"
  | DIV -> "DIV"
  | SDIV -> "SDIV"
  | MOD -> "MOD"
  | SMOD -> "SMOD"
  | ADDMOD -> "ADDMOD"
  | MULMOD -> "MULMOD"
  | EXP -> "EXP"
  | SIGNEXTEND -> "SIGNEXTEND"
  | LT -> "LT"
  | GT -> "GT"
  | SLT -> "SLT"
  | SGT -> "SGT"
  | EQ -> "EQ"
  | ISZERO -> "ISZERO"
  | AND -> "AND"
  | OR -> "OR"
  | XOR -> "XOR"
  | NOT -> "NOT"
  | BYTE -> "BYTE"
  | SHL -> "SHL"
  | SHR -> "SHR"
  | SAR -> "SAR"
  | KECCAK256 -> "KECCAK256"
  | ADDRESS -> "ADDRESS"
  | BALANCE -> "BALANCE"
  | ORIGIN -> "ORIGIN"
  | CALLER -> "CALLER"
  | CALLVALUE -> "CALLVALUE"
  | CALLDATALOAD -> "CALLDATALOAD"
  | CALLDATASIZE -> "CALLDATASIZE"
  | CALLDATACOPY -> "CALLDATACOPY"
  | CODESIZE -> "CODESIZE"
  | CODECOPY -> "CODECOPY"
  | GASPRICE -> "GASPRICE"
  | EXTCODESIZE -> "EXTCODESIZE"
  | EXTCODECOPY -> "EXTCODECOPY"
  | RETURNDATASIZE -> "RETURNDATASIZE"
  | RETURNDATACOPY -> "RETURNDATACOPY"
  | EXTCODEHASH -> "EXTCODEHASH"
  | BLOCKHASH -> "BLOCKHASH"
  | COINBASE -> "COINBASE"
  | TIMESTAMP -> "TIMESTAMP"
  | NUMBER -> "NUMBER"
  | PREVRANDAO -> "PREVRANDAO"
  | GASLIMIT -> "GASLIMIT"
  | CHAINID -> "CHAINID"
  | SELFBALANCE -> "SELFBALANCE"
  | BASEFEE -> "BASEFEE"
  | POP -> "POP"
  | MLOAD -> "MLOAD"
  | MSTORE -> "MSTORE"
  | MSTORE8 -> "MSTORE8"
  | SLOAD -> "SLOAD"
  | SSTORE -> "SSTORE"
  | JUMP -> "JUMP"
  | JUMPI -> "JUMPI"
  | PC -> "PC"
  | MSIZE -> "MSIZE"
  | GAS -> "GAS"
  | JUMPDEST -> "JUMPDEST"
  | PUSH0 -> "PUSH0"
  | PUSH n -> Printf.sprintf "PUSH%d" n
  | DUP n -> Printf.sprintf "DUP%d" n
  | SWAP n -> Printf.sprintf "SWAP%d" n
  | LOG n -> Printf.sprintf "LOG%d" n
  | CREATE -> "CREATE"
  | CALL -> "CALL"
  | CALLCODE -> "CALLCODE"
  | RETURN -> "RETURN"
  | DELEGATECALL -> "DELEGATECALL"
  | CREATE2 -> "CREATE2"
  | STATICCALL -> "STATICCALL"
  | REVERT -> "REVERT"
  | INVALID -> "INVALID"
  | SELFDESTRUCT -> "SELFDESTRUCT"
  | UNKNOWN b -> Printf.sprintf "UNKNOWN_0x%02x" b

let push_size = function PUSH n -> n | _ -> 0

let stack_arity = function
  | STOP -> (0, 0)
  | ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | EXP | SIGNEXTEND -> (2, 1)
  | ADDMOD | MULMOD -> (3, 1)
  | LT | GT | SLT | SGT | EQ -> (2, 1)
  | ISZERO -> (1, 1)
  | AND | OR | XOR -> (2, 1)
  | NOT -> (1, 1)
  | BYTE | SHL | SHR | SAR -> (2, 1)
  | KECCAK256 -> (2, 1)
  | ADDRESS | ORIGIN | CALLER | CALLVALUE | CALLDATASIZE | CODESIZE
  | GASPRICE | RETURNDATASIZE | COINBASE | TIMESTAMP | NUMBER | PREVRANDAO
  | GASLIMIT | CHAINID | SELFBALANCE | BASEFEE | PC | MSIZE | GAS ->
      (0, 1)
  | BALANCE | EXTCODESIZE | EXTCODEHASH | BLOCKHASH | CALLDATALOAD -> (1, 1)
  | CALLDATACOPY | CODECOPY | RETURNDATACOPY -> (3, 0)
  | EXTCODECOPY -> (4, 0)
  | POP -> (1, 0)
  | MLOAD | SLOAD -> (1, 1)
  | MSTORE | MSTORE8 | SSTORE -> (2, 0)
  | JUMP -> (1, 0)
  | JUMPI -> (2, 0)
  | JUMPDEST -> (0, 0)
  | PUSH0 | PUSH _ -> (0, 1)
  | DUP n -> (n, n + 1)
  | SWAP n -> (n + 1, n + 1)
  | LOG n -> (n + 2, 0)
  | CREATE -> (3, 1)
  | CREATE2 -> (4, 1)
  | CALL | CALLCODE -> (7, 1)
  | DELEGATECALL | STATICCALL -> (6, 1)
  | RETURN | REVERT -> (2, 0)
  | INVALID -> (0, 0)
  | SELFDESTRUCT -> (1, 0)
  | UNKNOWN _ -> (0, 0)

let is_terminator = function
  | STOP | RETURN | REVERT | INVALID | SELFDESTRUCT | JUMP | UNKNOWN _ -> true
  | _ -> false

let equal a b = to_byte a = to_byte b
let pp fmt op = Format.pp_print_string fmt (name op)
