exception Stack_underflow
exception Stack_overflow

let stack_limit = 1024

module Stack = struct
  type t = { mutable items : U256.t array; mutable depth : int }

  let create () = { items = Array.make 64 U256.zero; depth = 0 }
  let depth st = st.depth

  let grow st =
    let cap = Array.length st.items in
    if st.depth = cap then begin
      let bigger = Array.make (min stack_limit (2 * cap)) U256.zero in
      Array.blit st.items 0 bigger 0 cap;
      st.items <- bigger
    end

  let push st v =
    if st.depth >= stack_limit then raise Stack_overflow;
    grow st;
    st.items.(st.depth) <- v;
    st.depth <- st.depth + 1

  let pop st =
    if st.depth = 0 then raise Stack_underflow;
    st.depth <- st.depth - 1;
    st.items.(st.depth)

  let peek st n =
    if n < 0 || n >= st.depth then raise Stack_underflow;
    st.items.(st.depth - 1 - n)

  let dup st n =
    if n < 1 || n > st.depth then raise Stack_underflow;
    push st st.items.(st.depth - n)

  let swap st n =
    if n < 1 || n >= st.depth then raise Stack_underflow;
    let top = st.depth - 1 in
    let other = top - n in
    let tmp = st.items.(top) in
    st.items.(top) <- st.items.(other);
    st.items.(other) <- tmp

  let to_list st = List.init st.depth (fun i -> st.items.(st.depth - 1 - i))
end

module Memory = struct
  type t = { mutable data : Bytes.t; mutable words : int }

  let create () = { data = Bytes.create 0; words = 0 }
  let size_words m = m.words

  (* Quadratic memory cost: c(w) = 3w + w^2/512; expansion charges the
     difference. *)
  let word_cost w = (3 * w) + (w * w / 512)

  let words_for ~offset ~len =
    if len = 0 then 0 else (offset + len + 31) / 32

  let expansion_cost m ~offset ~len =
    let needed = words_for ~offset ~len in
    if needed <= m.words then 0 else word_cost needed - word_cost m.words

  let ensure m ~offset ~len =
    let needed = words_for ~offset ~len in
    if needed > m.words then begin
      let needed_bytes = needed * 32 in
      if needed_bytes > Bytes.length m.data then begin
        let cap = max needed_bytes (max 64 (2 * Bytes.length m.data)) in
        let bigger = Bytes.make cap '\000' in
        Bytes.blit m.data 0 bigger 0 (Bytes.length m.data);
        m.data <- bigger
      end;
      m.words <- needed
    end

  let load_word m offset =
    ensure m ~offset ~len:32;
    U256.of_bytes_be (Bytes.sub_string m.data offset 32)

  let store_word m offset v =
    ensure m ~offset ~len:32;
    Bytes.blit_string (U256.to_bytes_be v) 0 m.data offset 32

  let store_byte m offset b =
    ensure m ~offset ~len:1;
    Bytes.set m.data offset (Char.chr (b land 0xff))

  let load_slice m ~offset ~len =
    if len = 0 then ""
    else begin
      ensure m ~offset ~len;
      Bytes.sub_string m.data offset len
    end

  let store_slice m ~offset s =
    let len = String.length s in
    if len > 0 then begin
      ensure m ~offset ~len;
      Bytes.blit_string s 0 m.data offset len
    end

  let store_slice_padded m ~offset ~len src =
    if len > 0 then begin
      ensure m ~offset ~len;
      let avail = min len (String.length src) in
      Bytes.blit_string src 0 m.data offset avail;
      Bytes.fill m.data (offset + avail) (len - avail) '\000'
    end
end
