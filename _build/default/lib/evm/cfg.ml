type successor =
  | Jump_to of int
  | Fallthrough of int
  | Unknown

type block = {
  b_entry : int;
  b_instrs : Disasm.instr list;
  b_succs : successor list;
}

type t = { table : (int, block) Hashtbl.t; order : int list }

let last_two instrs =
  let rec go prev = function
    | [ x ] -> (prev, Some x)
    | x :: rest -> go (Some x) rest
    | [] -> (None, None)
  in
  go None instrs

let static_target prev =
  match prev with
  | Some (i : Disasm.instr) -> (
      match i.Disasm.opcode with
      | Opcode.PUSH _ -> U256.to_int (Disasm.operand_value i)
      | _ -> None)
  | None -> None

let build code =
  let raw = Disasm.basic_blocks code in
  let jumpdest_set = Hashtbl.create 16 in
  List.iter (fun off -> Hashtbl.replace jumpdest_set off ()) (Disasm.jumpdests code);
  let valid_dest d = Hashtbl.mem jumpdest_set d in
  let end_of (i : Disasm.instr) = i.Disasm.offset + 1 + String.length i.Disasm.operand in
  let block_entries = List.map fst raw in
  let entry_set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace entry_set e ()) block_entries;
  let table = Hashtbl.create 16 in
  List.iter
    (fun (entry, instrs) ->
      let succs =
        match last_two instrs with
        | _, None -> []
        | prev, Some last -> (
            let next = end_of last in
            let fallthrough =
              if Hashtbl.mem entry_set next then [ Fallthrough next ] else []
            in
            match last.Disasm.opcode with
            | Opcode.JUMP -> (
                match static_target prev with
                | Some d when valid_dest d -> [ Jump_to d ]
                | _ -> [ Unknown ])
            | Opcode.JUMPI -> (
                (match static_target prev with
                | Some d when valid_dest d -> [ Jump_to d ]
                | _ -> [ Unknown ])
                @ fallthrough)
            | Opcode.STOP | Opcode.RETURN | Opcode.REVERT | Opcode.INVALID
            | Opcode.SELFDESTRUCT | Opcode.UNKNOWN _ ->
                []
            | _ -> fallthrough)
      in
      Hashtbl.replace table entry { b_entry = entry; b_instrs = instrs; b_succs = succs })
    raw;
  { table; order = block_entries }

let blocks t =
  List.filter_map (fun e -> Hashtbl.find_opt t.table e) t.order

let block_at t offset = Hashtbl.find_opt t.table offset

let reachable_from t start =
  let visited = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit offset =
    if not (Hashtbl.mem visited offset) then begin
      Hashtbl.replace visited offset ();
      match block_at t offset with
      | None -> ()
      | Some b ->
          acc := b :: !acc;
          List.iter
            (function
              | Jump_to d -> visit d
              | Fallthrough d -> visit d
              | Unknown -> ())
            b.b_succs
    end
  in
  visit start;
  List.rev !acc

let reachable_instrs t start =
  List.concat_map (fun b -> b.b_instrs) (reachable_from t start)
