(** Static gas costs (simplified Berlin-era schedule: warm access prices,
    no access lists, no refunds).  Dynamic components — memory expansion,
    copy sizes, EXP byte length, call value surcharges — are charged by the
    interpreter on top of {!base_cost}. *)

val base_cost : Opcode.t -> int
(** Constant part of an opcode's cost. *)

val copy_word : int
(** Per-word surcharge for the COPY family (3). *)

val keccak_word : int
(** Per-word surcharge for KECCAK256 (6). *)

val exp_byte : int
(** Per-byte-of-exponent surcharge for EXP (50). *)

val log_topic : int
val log_byte : int
val call_value_surcharge : int
(** Extra cost of a value-transferring CALL (9000). *)

val call_stipend : int
(** Gas gifted to the callee of a value transfer (2300). *)

val new_account_surcharge : int
(** Extra cost when a value CALL creates the target account (25000). *)

val create_base : int
val code_deposit_byte : int
(** Per-byte deposit cost of deployed code (200). *)

val sstore_set : int
(** Zero to non-zero store (20000). *)

val sstore_reset : int
(** Any other store (5000). *)

val tx_base : int
(** Intrinsic cost of a transaction (21000). *)

val tx_create : int
(** Additional intrinsic cost of a contract-creating transaction (32000). *)

val tx_data_byte : zero:bool -> int
(** Intrinsic cost per calldata byte: 4 for zero bytes, 16 otherwise. *)

val max_code_size : int
(** EIP-170 deployed-code limit (24576 bytes). *)
