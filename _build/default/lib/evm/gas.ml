open Opcode

let base_cost = function
  | STOP | RETURN | REVERT | INVALID | UNKNOWN _ -> 0
  | JUMPDEST -> 1
  | ADDRESS | ORIGIN | CALLER | CALLVALUE | CALLDATASIZE | CODESIZE
  | GASPRICE | COINBASE | TIMESTAMP | NUMBER | PREVRANDAO | GASLIMIT
  | CHAINID | RETURNDATASIZE | POP | PC | MSIZE | GAS | BASEFEE | PUSH0 ->
      2
  | ADD | SUB | NOT | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR
  | BYTE | SHL | SHR | SAR | CALLDATALOAD | MLOAD | MSTORE | MSTORE8
  | PUSH _ | DUP _ | SWAP _ ->
      3
  | MUL | DIV | SDIV | MOD | SMOD | SIGNEXTEND | SELFBALANCE -> 5
  | ADDMOD | MULMOD | JUMP -> 8
  | EXP -> 10
  | JUMPI -> 10
  | BLOCKHASH -> 20
  | KECCAK256 -> 30
  | CALLDATACOPY | CODECOPY | RETURNDATACOPY -> 3
  | BALANCE | EXTCODESIZE | EXTCODEHASH | SLOAD -> 100
  | EXTCODECOPY -> 100
  | SSTORE -> 0 (* dynamic: sstore_set / sstore_reset *)
  | LOG _ -> 375
  | CREATE | CREATE2 -> 32000
  | CALL | CALLCODE | DELEGATECALL | STATICCALL -> 100
  | SELFDESTRUCT -> 5000

let copy_word = 3
let keccak_word = 6
let exp_byte = 50
let log_topic = 375
let log_byte = 8
let call_value_surcharge = 9000
let call_stipend = 2300
let new_account_surcharge = 25000
let create_base = 32000
let code_deposit_byte = 200
let sstore_set = 20000
let sstore_reset = 5000
let tx_base = 21000
let tx_create = 32000
let tx_data_byte ~zero = if zero then 4 else 16
let max_code_size = 24576
