lib/evm/disasm.ml: Char Hexutil List Opcode Printf String U256
