lib/evm/abi.ml: Address Buffer Hexutil Keccak List Printf String U256
