lib/evm/host.ml: Address Hashtbl Keccak Option U256
