lib/evm/address.ml: Format Hexutil Map Set String U256
