lib/evm/host.mli: Address U256
