lib/evm/gas.mli: Opcode
