lib/evm/disasm.mli: Opcode U256
