lib/evm/opcode.ml: Format Printf
