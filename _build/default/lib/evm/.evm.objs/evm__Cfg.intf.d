lib/evm/cfg.mli: Disasm
