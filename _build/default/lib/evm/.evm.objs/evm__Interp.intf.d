lib/evm/interp.mli: Address Host Opcode U256
