lib/evm/address.mli: Format Map Set U256
