lib/evm/machine.ml: Array Bytes Char List String U256
