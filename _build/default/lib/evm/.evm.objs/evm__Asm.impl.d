lib/evm/asm.ml: Buffer Char Hashtbl List Opcode Printf String U256
