lib/evm/asm.mli: Opcode U256
