lib/evm/stack_check.mli:
