lib/evm/gas.ml: Opcode
