lib/evm/opcode.mli: Format
