lib/evm/trace.ml: Address Format Hexutil Interp List String U256
