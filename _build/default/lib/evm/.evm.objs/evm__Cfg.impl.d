lib/evm/cfg.ml: Disasm Hashtbl List Opcode String U256
