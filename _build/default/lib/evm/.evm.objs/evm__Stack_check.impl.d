lib/evm/stack_check.ml: Cfg Disasm Hashtbl List Opcode Queue String
