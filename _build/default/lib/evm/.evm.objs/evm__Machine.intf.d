lib/evm/machine.mli: U256
