lib/evm/interp.ml: Address Char Disasm Gas Hashtbl Hexutil Host Keccak List Machine Opcode Option Printf Rlp String U256
