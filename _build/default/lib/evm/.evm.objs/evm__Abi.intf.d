lib/evm/abi.mli: Address U256
