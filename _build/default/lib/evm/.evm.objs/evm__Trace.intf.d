lib/evm/trace.mli: Address Format Host Interp U256
