(** Minimal Solidity ABI encoding: enough to build transaction call data
    (selector + statically-encoded arguments) and decode simple returns.
    Dynamic types are limited to [bytes], which the proxy analysis needs for
    forwarding payloads. *)

type value =
  | Uint of U256.t
  | Int of U256.t  (** Two's-complement encoded, like the EVM itself. *)
  | Addr of Address.t
  | Bool of bool
  | Fixed_bytes of string  (** [bytesN]: right-padded to 32. *)
  | Bytes of string  (** Dynamic [bytes]: offset + length + padded data. *)

val encode_args : value list -> string
(** Head/tail ABI encoding of an argument tuple. *)

val encode_call : signature:string -> value list -> string
(** [encode_call ~signature args] is the 4-byte selector of [signature]
    followed by [encode_args args] — ready-to-send call data. *)

val selector : string -> string
(** Re-export of {!Keccak.selector} for convenience. *)

val decode_uint : string -> U256.t
(** First 32-byte word of return data (zero when shorter). *)

val decode_address : string -> Address.t
val decode_bool : string -> bool

val random_selector : unavailable:string list -> seed:int -> string
(** A deterministic pseudo-random 4-byte selector distinct from every entry
    of [unavailable] — the crafted-call-data trick of §4.2. *)
