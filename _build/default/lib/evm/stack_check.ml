type verdict =
  | Safe of { max_depth : int }
  | Underflow of { offset : int; depth : int; needs : int }
  | Overflow of { offset : int }

let stack_limit = 1024

(* Per-block summary: the minimum entry depth required (deepest reach below
   the entry level) and the net depth change. *)
let summarize instrs =
  let needs = ref 0 in
  let depth = ref 0 in
  List.iter
    (fun (i : Disasm.instr) ->
      let consumed, produced = Opcode.stack_arity i.Disasm.opcode in
      let after_pop = !depth - consumed in
      if -after_pop > !needs then needs := -after_pop;
      depth := after_pop + produced)
    instrs;
  (!needs, !depth)

let analyze code =
  if String.length code = 0 then Safe { max_depth = 0 }
  else begin
    let cfg = Cfg.build code in
    let summaries = Hashtbl.create 16 in
    List.iter
      (fun (b : Cfg.block) ->
        Hashtbl.replace summaries b.Cfg.b_entry (b, summarize b.Cfg.b_instrs))
      (Cfg.blocks cfg);
    (* Worklist propagation of the maximum known entry depth is unsound for
       underflow (we need the minimum) — propagate per-entry depth values
       and bound the exploration by keeping, per block, the set of entry
       depths already visited (bounded, as depths are bounded by 1024). *)
    let visited = Hashtbl.create 64 in
    let result = ref (Safe { max_depth = 0 }) in
    let max_seen = ref 0 in
    let queue = Queue.create () in
    Queue.add (0, 0) queue;
    let stop () = match !result with Safe _ -> false | _ -> true in
    while (not (Queue.is_empty queue)) && not (stop ()) do
      let offset, depth = Queue.pop queue in
      if not (Hashtbl.mem visited (offset, depth)) then begin
        Hashtbl.replace visited (offset, depth) ();
        match Hashtbl.find_opt summaries offset with
        | None -> ()
        | Some (block, (needs, delta)) ->
            if depth < needs then
              result := Underflow { offset; depth; needs }
            else begin
              let exit_depth = depth + delta in
              if exit_depth > stack_limit then result := Overflow { offset }
              else begin
                if exit_depth > !max_seen then max_seen := exit_depth;
                List.iter
                  (function
                    | Cfg.Jump_to d | Cfg.Fallthrough d ->
                        (* JUMP/JUMPI consumed their operands already via
                           arity, so the successor entry depth is the exit
                           depth. *)
                        Queue.add (d, exit_depth) queue
                    | Cfg.Unknown -> ())
                  block.Cfg.b_succs
              end
            end
      end
    done;
    match !result with
    | Safe _ -> Safe { max_depth = !max_seen }
    | v -> v
  end

let is_safe code = match analyze code with Safe _ -> true | _ -> false
