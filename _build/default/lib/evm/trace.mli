(** Structured execution traces: a call tree with per-frame storage
    accesses, built from the interpreter's tracer hooks.

    The analysis layer uses raw hooks directly; this module is for humans —
    debugging contracts, inspecting what a transaction did, and the CLI's
    trace output. *)

type node = {
  t_kind : string;  (** "CALL", "DELEGATECALL", ... or "TX" for the root. *)
  t_from : Address.t;
  t_code : Address.t;  (** Code executed. *)
  t_context : Address.t;  (** Storage context. *)
  t_input : string;
  t_value : U256.t;
  t_status : string;  (** Filled when the frame completes. *)
  t_sloads : (Address.t * U256.t * U256.t) list;  (** (ctx, slot, value). *)
  t_sstores : (Address.t * U256.t * U256.t) list;
  t_children : node list;
}

type capture

val make : caller:Address.t -> target:Address.t -> input:string -> capture
(** Prepare a capture for a top-level call. *)

val tracer : capture -> Interp.tracer
(** The tracer to pass to {!Interp.execute}. *)

val finish : capture -> Interp.result -> node
(** Assemble the tree once execution returned. *)

val run :
  ?gas:int -> Host.t -> caller:Address.t -> target:Address.t -> input:string ->
  Interp.result * node
(** Convenience: execute and capture in one step. *)

val pp : Format.formatter -> node -> unit
(** Indented call-tree rendering with storage accesses. *)

val to_string : node -> string
