type item =
  | Op of Opcode.t
  | Push of string
  | Push_int of int
  | Push_u256 of U256.t
  | Push_label of string
  | Label of string
  | Jumpdest of string
  | Raw of string

let minimal_bytes_of_u256 v =
  let full = U256.to_bytes_be v in
  let rec first_nonzero i =
    if i >= 31 then 31 else if full.[i] <> '\000' then i else first_nonzero (i + 1)
  in
  let start = first_nonzero 0 in
  String.sub full start (32 - start)

let item_size = function
  | Op (Opcode.PUSH _) -> invalid_arg "Asm: use Push items for PUSH opcodes"
  | Op _ -> 1
  | Push operand ->
      let n = String.length operand in
      if n < 1 || n > 32 then invalid_arg "Asm: push operand must be 1-32 bytes";
      1 + n
  | Push_int n ->
      if n < 0 then invalid_arg "Asm: negative push";
      1 + String.length (minimal_bytes_of_u256 (U256.of_int n))
  | Push_u256 v -> 1 + String.length (minimal_bytes_of_u256 v)
  | Push_label _ -> 3
  | Label _ -> 0
  | Jumpdest _ -> 1
  | Raw s -> String.length s

let assemble items =
  (* Pass 1: lay out offsets and collect label positions. *)
  let labels = Hashtbl.create 16 in
  let define name offset =
    if Hashtbl.mem labels name then
      invalid_arg (Printf.sprintf "Asm: duplicate label %s" name);
    Hashtbl.replace labels name offset
  in
  let total =
    List.fold_left
      (fun offset item ->
        (match item with
        | Label name | Jumpdest name -> define name offset
        | _ -> ());
        offset + item_size item)
      0 items
  in
  if total > 0xffff then invalid_arg "Asm: program exceeds PUSH2 addressing";
  (* Pass 2: emit. *)
  let buf = Buffer.create total in
  let emit_push operand =
    Buffer.add_char buf (Char.chr (Opcode.to_byte (Opcode.PUSH (String.length operand))));
    Buffer.add_string buf operand
  in
  List.iter
    (fun item ->
      match item with
      | Op op -> Buffer.add_char buf (Char.chr (Opcode.to_byte op))
      | Push operand -> emit_push operand
      | Push_int n -> emit_push (minimal_bytes_of_u256 (U256.of_int n))
      | Push_u256 v -> emit_push (minimal_bytes_of_u256 v)
      | Push_label name -> (
          match Hashtbl.find_opt labels name with
          | None -> invalid_arg (Printf.sprintf "Asm: undefined label %s" name)
          | Some offset ->
              emit_push
                (String.init 2 (fun i ->
                     Char.chr ((offset lsr (8 * (1 - i))) land 0xff))))
      | Label _ -> ()
      | Jumpdest _ -> Buffer.add_char buf (Char.chr (Opcode.to_byte Opcode.JUMPDEST))
      | Raw s -> Buffer.add_string buf s)
    items;
  Buffer.contents buf

let concat = List.concat
