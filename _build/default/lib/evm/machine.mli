(** Mutable per-frame machine state: the 1024-deep word stack and the
    byte-addressed, word-expanded transient memory. *)

exception Stack_underflow
exception Stack_overflow

module Stack : sig
  type t

  val create : unit -> t
  val depth : t -> int
  val push : t -> U256.t -> unit
  val pop : t -> U256.t
  val peek : t -> int -> U256.t
  (** [peek st n] reads the item [n] positions below the top (0 = top). *)

  val dup : t -> int -> unit
  (** [dup st n] pushes a copy of the [n]-th item from the top (1-based),
      implementing DUPn. *)

  val swap : t -> int -> unit
  (** [swap st n] exchanges the top with the item [n] below it (SWAPn). *)

  val to_list : t -> U256.t list
  (** Top-first snapshot, for tracing. *)
end

module Memory : sig
  type t

  val create : unit -> t

  val size_words : t -> int
  (** Current size in 32-byte words (what MSIZE reports / 32). *)

  val expansion_cost : t -> offset:int -> len:int -> int
  (** Additional quadratic memory gas if the access [offset, offset+len)
      happens; 0 when it fits or [len = 0]. *)

  val ensure : t -> offset:int -> len:int -> unit
  (** Grow to cover the access (callers charge {!expansion_cost} first). *)

  val load_word : t -> int -> U256.t
  val store_word : t -> int -> U256.t -> unit
  val store_byte : t -> int -> int -> unit
  val load_slice : t -> offset:int -> len:int -> string
  val store_slice : t -> offset:int -> string -> unit

  val store_slice_padded : t -> offset:int -> len:int -> string -> unit
  (** Copy [len] bytes taken from the source string, zero-padding past its
      end — the semantics of CALLDATACOPY/CODECOPY. *)
end
