type t = string

let zero = String.make 20 '\000'

let of_bytes s =
  if String.length s <> 20 then
    invalid_arg "Address.of_bytes: expected 20 bytes";
  s

let of_hex h =
  let b = Hexutil.of_hex h in
  of_bytes b

let to_hex t = Hexutil.to_hex t
let of_u256 v = String.sub (U256.to_bytes_be v) 12 20
let to_u256 t = U256.of_bytes_be t
let equal = String.equal
let compare = String.compare
let pp fmt t = Format.pp_print_string fmt (to_hex t)

module Map = Map.Make (String)
module Set = Set.Make (String)
