(** Static stack-height verification of EVM bytecode.

    A worklist pass over the {!Cfg}: each basic block is summarized by the
    stack depth it consumes and its net effect; entry depths propagate
    along statically resolved edges from offset 0.  The verifier proves
    the absence of stack underflow (and of overflow past the 1024 limit)
    on every statically visible path — the property every contract a
    correct compiler emits must have.  Dynamically computed jumps are not
    followed, so the check is sound only for solc-style code whose jumps
    carry immediate targets (which is what {!Minisol.Codegen} and the
    pattern library produce). *)

type verdict =
  | Safe of { max_depth : int }
      (** No reachable underflow/overflow; the deepest stack observed. *)
  | Underflow of { offset : int; depth : int; needs : int }
      (** Block at [offset] is reachable with [depth] items but pops
          [needs]. *)
  | Overflow of { offset : int }

val analyze : string -> verdict
(** Verify bytecode starting from offset 0 with an empty stack. *)

val is_safe : string -> bool
