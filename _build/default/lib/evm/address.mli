(** 20-byte Ethereum account addresses.

    Addresses are raw 20-byte strings; this module gathers the conversions
    used across the EVM, chain, and analysis layers. *)

type t = string
(** Always exactly 20 bytes. *)

val zero : t

val of_hex : string -> t
(** Raises [Invalid_argument] when the input is not 20 bytes of hex. *)

val to_hex : t -> string
(** 0x-prefixed lowercase hex. *)

val of_u256 : U256.t -> t
(** Truncates to the low 160 bits, as the EVM does for call targets. *)

val to_u256 : t -> U256.t

val of_bytes : string -> t
(** Validates length; raises [Invalid_argument] otherwise. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
