(** A minimal JSON emitter (no external dependencies) for machine-readable
    experiment output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [pretty] (default true) indents with two spaces. *)

val escape : string -> string
(** JSON string escaping (quotes, backslashes, control characters). *)

val parse : string -> (t, string) result
(** Recursive-descent JSON parsing (objects, arrays, strings with the
    escapes {!escape} emits, integers, floats, booleans, null).  Numbers
    without a fraction or exponent parse as [Int]. *)
