lib/report/json.ml: Buffer Char Float List Printf String
