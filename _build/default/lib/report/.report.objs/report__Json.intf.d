lib/report/json.mli:
