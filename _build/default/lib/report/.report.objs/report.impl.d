lib/report/report.ml: Array Buffer Json List Printf String
