lib/report/report.mli: Json
