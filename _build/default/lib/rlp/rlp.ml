type item = String of string | List of item list

let encode_length len offset =
  if len < 56 then String.make 1 (Char.chr (offset + len))
  else begin
    (* Big-endian minimal byte representation of [len]. *)
    let rec bytes_of n acc = if n = 0 then acc else bytes_of (n lsr 8) (Char.chr (n land 0xff) :: acc) in
    let len_bytes = bytes_of len [] in
    let len_len = List.length len_bytes in
    String.init (1 + len_len) (fun i ->
        if i = 0 then Char.chr (offset + 55 + len_len)
        else List.nth len_bytes (i - 1))
  end

let rec encode = function
  | String s ->
      if String.length s = 1 && Char.code s.[0] < 0x80 then s
      else encode_length (String.length s) 0x80 ^ s
  | List items ->
      let body = String.concat "" (List.map encode items) in
      encode_length (String.length body) 0xc0 ^ body

let encode_int n =
  if n < 0 then invalid_arg "Rlp.encode_int: negative";
  let rec bytes_of n acc =
    if n = 0 then acc else bytes_of (n lsr 8) (String.make 1 (Char.chr (n land 0xff)) :: acc)
  in
  String.concat "" (bytes_of n [])

(* Decoding.  Returns (item, bytes consumed). *)
let rec decode_at s pos =
  if pos >= String.length s then invalid_arg "Rlp.decode: truncated input";
  let b = Char.code s.[pos] in
  let read_exact p n =
    if p + n > String.length s then invalid_arg "Rlp.decode: truncated input";
    String.sub s p n
  in
  let read_length p n_len =
    let raw = read_exact p n_len in
    if n_len > 0 && raw.[0] = '\000' then
      invalid_arg "Rlp.decode: non-canonical length (leading zero)";
    let len = String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 raw in
    if len < 56 then invalid_arg "Rlp.decode: non-canonical long form";
    len
  in
  if b < 0x80 then (String (String.make 1 (Char.chr b)), 1)
  else if b <= 0xb7 then begin
    let len = b - 0x80 in
    let payload = read_exact (pos + 1) len in
    if len = 1 && Char.code payload.[0] < 0x80 then
      invalid_arg "Rlp.decode: non-canonical single byte";
    (String payload, 1 + len)
  end
  else if b <= 0xbf then begin
    let n_len = b - 0xb7 in
    let len = read_length (pos + 1) n_len in
    (String (read_exact (pos + 1 + n_len) len), 1 + n_len + len)
  end
  else begin
    let n_len, len =
      if b <= 0xf7 then (0, b - 0xc0)
      else
        let n_len = b - 0xf7 in
        (n_len, read_length (pos + 1) n_len)
    in
    let body_start = pos + 1 + n_len in
    if body_start + len > String.length s then
      invalid_arg "Rlp.decode: truncated list";
    let rec items p acc =
      if p = body_start + len then List.rev acc
      else if p > body_start + len then
        invalid_arg "Rlp.decode: list item overruns list"
      else
        let item, used = decode_at s p in
        items (p + used) (item :: acc)
    in
    (List (items body_start []), 1 + n_len + len)
  end

let decode s =
  let item, used = decode_at s 0 in
  if used <> String.length s then invalid_arg "Rlp.decode: trailing bytes";
  item

let decode_opt s = match decode s with item -> Some item | exception _ -> None

let contract_address ~sender ~nonce =
  if String.length sender <> 20 then
    invalid_arg "Rlp.contract_address: sender must be 20 bytes";
  let encoded = encode (List [ String sender; String (encode_int nonce) ]) in
  String.sub (Keccak.digest encoded) 12 20

let create2_address ~sender ~salt ~init_code =
  if String.length sender <> 20 then
    invalid_arg "Rlp.create2_address: sender must be 20 bytes";
  let preimage =
    "\xff" ^ sender ^ U256.to_bytes_be salt ^ Keccak.digest init_code
  in
  String.sub (Keccak.digest preimage) 12 20
