(** Recursive Length Prefix (RLP) encoding, Ethereum's canonical
    serialization, plus the contract-address derivations built on it. *)

type item = String of string | List of item list

val encode : item -> string
(** Canonical RLP encoding of [item]. *)

val decode : string -> item
(** Inverse of {!encode}.  Raises [Invalid_argument] on malformed or
    non-canonical input, including trailing bytes. *)

val decode_opt : string -> item option

val encode_int : int -> string
(** RLP string item for a non-negative integer: big-endian minimal bytes
    (the empty string for 0). *)

val contract_address : sender:string -> nonce:int -> string
(** [contract_address ~sender ~nonce] is the 20-byte address created by a
    CREATE from [sender] (20 bytes) with account [nonce]:
    [keccak(rlp([sender, nonce]))[12..31]]. *)

val create2_address :
  sender:string -> salt:U256.t -> init_code:string -> string
(** EIP-1014 CREATE2 address:
    [keccak(0xff ++ sender ++ salt ++ keccak(init_code))[12..31]]. *)
