lib/dataset/prng.mli:
