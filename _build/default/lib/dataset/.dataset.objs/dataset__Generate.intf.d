lib/dataset/generate.mli: Chain Evm Proxion
