lib/dataset/accuracy.ml: Array Chain Evm Hashtbl Hexutil Keccak List Minisol Printf Prng Proxion Sig_mine String U256
