lib/dataset/sig_mine.mli:
