lib/dataset/spec.ml: Float List Proxion
