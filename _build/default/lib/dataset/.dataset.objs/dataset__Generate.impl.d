lib/dataset/generate.ml: Array Chain Evm Float Hashtbl Hexutil Keccak Lazy List Minisol Printf Prng Proxion Sig_mine Spec String U256
