lib/dataset/spec.mli: Proxion
