lib/dataset/sig_mine.ml: Hashtbl Keccak List Printf
