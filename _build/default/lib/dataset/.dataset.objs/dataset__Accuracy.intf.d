lib/dataset/accuracy.mli: Chain Evm Proxion
