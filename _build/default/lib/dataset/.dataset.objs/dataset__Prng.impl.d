lib/dataset/prng.ml: Array Int64 List
