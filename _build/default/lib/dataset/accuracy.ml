module Address = Evm.Address
module Ast = Minisol.Ast
module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

type pair_label = {
  c_name : string;
  c_proxy : Address.t;
  c_logic : Address.t;
  c_gt_func : bool;
  c_gt_storage : bool;
  c_has_tx : bool;
}

type corpus = {
  chain : Chain.t;
  pairs : pair_label list;
  source_of : Proxion.Pipeline.source_lookup;
}

let eoa i =
  Address.of_u256 (U256.of_bytes_be (Keccak.digest (Printf.sprintf "corpus-eoa-%d" i)))

(* A library contract with a small-typed variable at slot 0: pairs made of
   (library caller, this) exhibit a slot-0 type clash, but they are not
   proxy pairs at all — the CRUSH/USCHunt false-positive shape. *)
let small_var_library i =
  Ast.contract (Printf.sprintf "MathLib%d" i)
    ~vars:[ { Ast.v_name = "initialized"; v_ty = Ast.T_bool } ]
    ~funcs:
      [
        Ast.func "add"
          ~params:
            [
              { Ast.p_name = "a"; p_ty = Ast.T_uint 256 };
              { Ast.p_name = "b"; p_ty = Ast.T_uint 256 };
            ]
          ~returns:(Ast.T_uint 256)
          [ Ast.Return_value (Ast.Bin (Ast.Add, Ast.Param 0, Ast.Param 1)) ];
        Ast.func "init" [ Ast.Store ("initialized", Ast.Const U256.one) ];
      ]

(* A logic contract whose colliding write is itself admin-gated: static
   comparison flags the slot-0 clash, but no attacker transaction can
   trigger it — a candidate that exploit verification rejects. *)
let guarded_write_logic i =
  Ast.contract (Printf.sprintf "GuardedLogic%d" i)
    ~vars:
      [
        { Ast.v_name = "counter"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "keeper"; v_ty = Ast.T_address };
      ]
    ~funcs:
      [
        Ast.func "bump"
          [
            Ast.Require (Ast.Bin (Ast.Eq, Ast.Caller, Ast.Load "keeper"));
            Ast.Store ("counter", Ast.Bin (Ast.Add, Ast.Load "counter", Ast.Const U256.one));
          ];
        Ast.func "current" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
          [ Ast.Return_value (Ast.Load "counter") ];
      ]

let clean_logic i =
  Ast.contract (Printf.sprintf "CleanLogic%d" i)
    ~vars:
      [
        { Ast.v_name = "pad0"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "pad1"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "store_"; v_ty = Ast.T_uint 256 };
      ]
    ~funcs:
      [
        Ast.func (Printf.sprintf "put%d" i)
          ~params:[ { Ast.p_name = "v"; p_ty = Ast.T_uint 256 } ]
          [ Ast.Store ("store_", Ast.Param 0) ];
      ]

(* Emulation-hostile bytecode: passes the DELEGATECALL prefilter yet
   underflows the stack immediately — the source of the paper's three
   ProxioN function-collision misses. *)
let hostile_bytecode i =
  Evm.Asm.assemble
    [
      Evm.Asm.Push_int (0x40 + (i land 0x3f));
      Evm.Asm.Op Evm.Opcode.POP;
      Evm.Asm.Op (Evm.Opcode.SWAP 3);
      Evm.Asm.Op Evm.Opcode.DELEGATECALL;
    ]

let slot_proxy_clean i =
  Patterns.slot_var_proxy
    ~extra_funcs:[ Ast.func (Printf.sprintf "probe%d" i) [ Ast.Stop ] ]
    ()

let build ?(seed = 7) ?(size_factor = 1) () =
  let chain = Chain.create () in
  let rng = Prng.create seed in
  let sources : (Address.t, Ast.contract) Hashtbl.t = Hashtbl.create 256 in
  let pairs = ref [] in
  let install ?ast runtime =
    let addr = Chain.install_contract chain ~runtime () in
    (match ast with Some a -> Hashtbl.replace sources addr a | None -> ());
    addr
  in
  let install_ast ast = install ~ast (Codegen.runtime ast) in
  let forward_tx proxy =
    (* Any unknown selector reaches the fallback and forwards. *)
    let input = Hexutil.take 36 (Keccak.digest (Address.to_hex proxy) ^ String.make 32 '\000') in
    ignore (Chain.call chain ~from:(eoa (Prng.int rng 32)) ~to_:proxy ~input ())
  in
  let record ?(tx = false) name proxy logic ~func ~storage =
    if tx then forward_tx proxy;
    pairs :=
      {
        c_name = name;
        c_proxy = proxy;
        c_logic = logic;
        c_gt_func = func;
        c_gt_storage = storage;
        c_has_tx = tx;
      }
      :: !pairs
  in
  let n k = k * size_factor in

  (* --- storage-collision positives ----------------------------------- *)
  (* Standard Audius-style pairs with transaction history. *)
  for i = 1 to n 15 do
    let logic = install_ast (Patterns.audius_logic ()) in
    let proxy_ast =
      let base = Patterns.audius_proxy () in
      {
        base with
        Ast.c_funcs =
          base.Ast.c_funcs @ [ Ast.func (Printf.sprintf "v%d" i) [ Ast.Stop ] ];
      }
    in
    let proxy = install_ast proxy_ast in
    Chain.set_storage_direct chain proxy U256.zero (Address.to_u256 (eoa i));
    Chain.set_storage_direct chain proxy U256.one (Address.to_u256 logic);
    record ~tx:true "audius-std" proxy logic ~func:false ~storage:true
  done;
  (* Hidden pairs: identical vulnerability, but no transactions ever. *)
  for i = 1 to n 5 do
    let logic = install_ast (Patterns.audius_logic ()) in
    let proxy_ast =
      let base = Patterns.audius_proxy () in
      {
        base with
        Ast.c_funcs =
          base.Ast.c_funcs @ [ Ast.func (Printf.sprintf "h%d" i) [ Ast.Stop ] ];
      }
    in
    let proxy = install_ast proxy_ast in
    Chain.set_storage_direct chain proxy U256.zero (Address.to_u256 (eoa i));
    Chain.set_storage_direct chain proxy U256.one (Address.to_u256 logic);
    record "audius-hidden" proxy logic ~func:false ~storage:true
  done;
  (* Diamond-gated pairs: the vulnerability is live (the facet is
     registered) but ProxioN's random probe cannot pass the gate. *)
  for i = 1 to n 5 do
    let logic = install_ast (Patterns.audius_logic ()) in
    let proxy = install_ast (Patterns.diamond_proxy ()) in
    (* Register initialize() as a facet selector and leave a delegate-call
       trace in history. *)
    let owner = eoa (100 + i) in
    Chain.set_storage_direct chain proxy U256.zero (Address.to_u256 owner);
    let sel_word = U256.of_bytes_be (Keccak.selector "initialize()") in
    let _ =
      Chain.call chain ~from:owner ~to_:proxy
        ~input:
          (Evm.Abi.encode_call ~signature:"setFacet(uint256,address)"
             [ Evm.Abi.Uint sel_word; Evm.Abi.Addr logic ])
        ()
    in
    let _ =
      Chain.call chain ~from:owner ~to_:proxy
        ~input:(Evm.Abi.encode_call ~signature:"initialize()" [])
        ()
    in
    record "audius-diamond" proxy logic ~func:false ~storage:true
  done;

  (* --- storage-collision negatives ------------------------------------ *)
  for i = 1 to n 20 do
    ignore i;
    let logic = install_ast (Patterns.padding_logic ()) in
    let proxy = install_ast (Patterns.padding_proxy ()) in
    Chain.set_storage_direct chain proxy U256.zero (Address.to_u256 logic);
    record ~tx:true "padding" proxy logic ~func:false ~storage:false
  done;
  for i = 1 to n 25 do
    let logic = install_ast (clean_logic i) in
    let proxy = install_ast (Patterns.eip1967_proxy ()) in
    Chain.set_storage_direct chain proxy Patterns.eip1967_implementation_slot
      (Address.to_u256 logic);
    record ~tx:true "aligned" proxy logic ~func:false ~storage:false
  done;
  for i = 1 to n 15 do
    let lib = install_ast (small_var_library i) in
    let caller = install_ast (Patterns.library_caller ~lib) in
    (* A transaction exercising the library call leaves the DELEGATECALL
       trace that fools history-based tools. *)
    let _ =
      Chain.call chain
        ~from:(eoa (200 + i))
        ~to_:caller
        ~input:
          (Evm.Abi.encode_call ~signature:"addChecked(uint256,uint256)"
             [ Evm.Abi.Uint U256.one; Evm.Abi.Uint U256.one ])
        ()
    in
    record "library-pair" caller lib ~func:false ~storage:false
  done;
  for i = 1 to n 12 do
    let logic = install_ast (guarded_write_logic i) in
    let proxy_ast =
      let base = Patterns.audius_proxy () in
      { base with Ast.c_name = Printf.sprintf "GuardProxy%d" i }
    in
    let proxy = install_ast proxy_ast in
    Chain.set_storage_direct chain proxy U256.zero (Address.to_u256 (eoa (300 + i)));
    Chain.set_storage_direct chain proxy U256.one (Address.to_u256 logic);
    record ~tx:true "guarded-write" proxy logic ~func:false ~storage:false
  done;

  (* --- function-collision positives ----------------------------------- *)
  let mined = Array.of_list (Sig_mine.mine ~prefix:"acc" ~count:(n 60 + 3) ()) in
  let strip s = String.sub s 0 (String.length s - 2) in
  for i = 1 to n 60 do
    let pair = mined.(i - 1) in
    let logic_ast =
      Ast.contract (Printf.sprintf "Entice%d" i)
        ~funcs:
          [
            Ast.func (strip pair.Sig_mine.sig_b) ~mutability:Ast.Payable
              [ Ast.Transfer (Ast.Caller, Ast.Const (U256.of_int 1000)) ];
          ]
    in
    let proxy_ast =
      Ast.contract (Printf.sprintf "Hidden%d" i)
        ~vars:
          [
            { Ast.v_name = "owner"; v_ty = Ast.T_address };
            { Ast.v_name = "logic"; v_ty = Ast.T_address };
          ]
        ~funcs:[ Ast.func (strip pair.Sig_mine.sig_a) [ Ast.Stop ] ]
        ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])
    in
    let logic = install_ast logic_ast in
    let proxy = install_ast proxy_ast in
    Chain.set_storage_direct chain proxy U256.one (Address.to_u256 logic);
    record ~tx:true "honeypot" proxy logic ~func:true ~storage:false
  done;
  (* The three emulation-error misses: source says collision, but the
     deployed bytecode defeats emulation. *)
  for i = 1 to 3 do
    let pair = mined.(n 60 + i - 1) in
    let logic_ast =
      Ast.contract (Printf.sprintf "EnticeX%d" i)
        ~funcs:[ Ast.func (strip pair.Sig_mine.sig_b) [ Ast.Stop ] ]
    in
    let proxy_ast =
      Ast.contract (Printf.sprintf "HostileProxy%d" i)
        ~vars:[ { Ast.v_name = "logic"; v_ty = Ast.T_address } ]
        ~funcs:[ Ast.func (strip pair.Sig_mine.sig_a) [ Ast.Stop ] ]
        ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])
    in
    let logic = install_ast logic_ast in
    let proxy = install ~ast:proxy_ast (hostile_bytecode i) in
    record "honeypot-hostile" proxy logic ~func:true ~storage:false
  done;
  (* --- function-collision negatives ------------------------------------ *)
  for i = 1 to n 10 do
    let logic = install_ast (clean_logic (1000 + i)) in
    let proxy = install_ast (slot_proxy_clean i) in
    Chain.set_storage_direct chain proxy U256.one (Address.to_u256 logic);
    record ~tx:true "func-clean" proxy logic ~func:false ~storage:false
  done;
  {
    chain;
    pairs = List.rev !pairs;
    source_of = (fun addr -> Hashtbl.find_opt sources addr);
  }
