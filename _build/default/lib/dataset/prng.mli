(** Deterministic pseudo-random numbers (splitmix64) for reproducible
    dataset generation.  Every landscape is a pure function of its seed. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0, n).  Requires [n > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice.  Requires a non-empty array. *)

val pick_weighted : t -> ('a * float) list -> 'a
(** Choice by relative weight.  Requires positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
