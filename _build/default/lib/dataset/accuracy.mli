(** The labeled collision corpus behind the Table 2 accuracy comparison.

    The paper hand-verifies every collision reported by any tool on the
    Smart Contract Sanctuary dataset (source-available contracts) and
    scores each tool's TP/FP/TN/FN.  This module builds the equivalent
    ground-truth corpus: proxy/logic pairs, all with Minisol source,
    deliberately mixing the cases the tools disagree about —

    - genuine storage collisions (Audius-style), some hidden behind
      diamond gating (ProxioN false negatives) and some without any
      transaction history (CRUSH false negatives);
    - storage-padding look-alikes (USCHunt false positives);
    - genuinely aligned pairs (true negatives);
    - library-call pairs with clashing slot typing (CRUSH false
      positives — they are not proxy pairs at all);
    - genuine function collisions from mined selector pairs, a few with
      emulation-hostile proxy bytecode (the paper's three ProxioN
      function-collision misses);
    - collision-free pairs. *)

type pair_label = {
  c_name : string;  (** A short description of the case. *)
  c_proxy : Evm.Address.t;
  c_logic : Evm.Address.t;
  c_gt_func : bool;  (** Ground truth: a function collision exists. *)
  c_gt_storage : bool;  (** Ground truth: an exploitable storage collision. *)
  c_has_tx : bool;  (** The pair has delegate-call transaction history. *)
}

type corpus = {
  chain : Chain.t;
  pairs : pair_label list;
  source_of : Proxion.Pipeline.source_lookup;
}

val build : ?seed:int -> ?size_factor:int -> unit -> corpus
(** [size_factor] (default 1) scales the number of instances per case
    class; the default corpus has on the order of 200 storage-labeled and
    100 function-labeled pairs, mirroring the paper's 206 + 561 manually
    inspected instances at reduced scale. *)
