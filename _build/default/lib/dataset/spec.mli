(** The paper's measured distributions, collected in one place so the
    landscape generator and the experiment harness agree on targets.
    Sources: Figure 2 (availability over years), §7.2 and Figure 4 (proxy
    growth and source availability), Table 3 (collisions per year),
    Table 4 (standards), Figure 5 (clone skew), Figure 6 (upgrades). *)

val years : int array
(** 2015-2023. *)

val alive_cumulative_millions : (int * float) list
(** Figure 2's cumulative alive-contract curve (approximate read-off). *)

val yearly_share : (int * float) list
(** Fraction of the population deployed in each year (derived). *)

val proxy_share_total : float
(** 54.2% of alive contracts are proxies (§7.2). *)

val proxy_rate_by_year : int -> float
(** Per-year proxy probability: low before 2018, >0.93 in 2022-23 (§7.2),
    calibrated so the population-wide rate lands near
    {!proxy_share_total}. *)

val source_rate_proxy : float
(** ~10% of proxies have source (§7.2: "about 90% of proxy contracts lack
    available source codes"). *)

val source_rate_non_proxy : float
(** Calibrated so the whole population lands near 18% with source. *)

val tx_rate : float
(** ~53% of contracts have past transactions (Figure 2). *)

val standard_mix : (Proxion.Standard_classify.standard * float) list
(** Table 4: EIP-1167 89.05%, EIP-1822 0.12%, EIP-1967 1.00%,
    Others 9.83%. *)

val mega_clone_share : float
(** 42% of proxy contracts duplicate just three popular contracts (§7.2). *)

val function_collisions_by_year : (int * int) list
(** Table 3, function column (mainnet counts). *)

val storage_collisions_by_year : (int * int) list
(** Table 3, storage column (mainnet counts). *)

val duplicated_function_collision_share : float
(** 98.7% of function-colliding proxies are OwnableDelegateProxy clones. *)

val upgraded_proxy_fraction : float
(** 0.3% of proxies ever upgraded (Figure 6: 99.7% never did). *)

val upgrade_rate_slot_proxy : float
(** The same fraction conditioned on being a slot-based (upgradeable)
    proxy, the only kind that can upgrade (~2.5%). *)

val ownable_clone_rate : int -> float
(** Per-year share of proxies that are OwnableDelegateProxy-style clones,
    derived from Table 3 (drives the function-collision year shape). *)

val mean_logic_contracts_per_upgraded : float
(** 1.32 associated logic contracts on average (§7.2). *)

val mainnet_total_alive : int
(** 36 million (§6.1). *)

val scale_denominator : int
(** Default landscape scale: 1/1000 of mainnet. *)

val scale : int -> int -> int
(** [scale total mainnet_count] rescales a mainnet count to a landscape of
    [total] contracts, rounding but keeping at least 1 when the mainnet
    count is positive. *)
