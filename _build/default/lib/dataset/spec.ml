let years = [| 2015; 2016; 2017; 2018; 2019; 2020; 2021; 2022; 2023 |]

(* Figure 2 read-off: cumulative alive contracts (millions) per year end. *)
let alive_cumulative_millions =
  [
    (2015, 0.05);
    (2016, 0.6);
    (2017, 2.2);
    (2018, 5.0);
    (2019, 7.0);
    (2020, 9.5);
    (2021, 20.0);
    (2022, 28.0);
    (2023, 36.0);
  ]

let yearly_share =
  let total = 36.0 in
  let rec diffs prev = function
    | [] -> []
    | (y, c) :: rest -> (y, (c -. prev) /. total) :: diffs c rest
  in
  diffs 0.0 alive_cumulative_millions

let proxy_share_total = 0.542

(* §7.2: ~1.3M proxies before 2018, stable 2018-2020, mainstream after;
   more than 93% of 2022/2023 deployments are proxies. *)
let proxy_rate_by_year = function
  | 2015 -> 0.02
  | 2016 -> 0.10
  | 2017 -> 0.28
  | 2018 -> 0.25
  | 2019 -> 0.20
  | 2020 -> 0.21
  | 2021 -> 0.36
  | 2022 -> 0.93
  | _ -> 0.94

let source_rate_proxy = 0.10
let source_rate_non_proxy = 0.24
let tx_rate = 0.53

let standard_mix =
  [
    (Proxion.Standard_classify.Eip1167, 0.8905);
    (Proxion.Standard_classify.Eip1822, 0.0012);
    (Proxion.Standard_classify.Eip1967, 0.0100);
    (Proxion.Standard_classify.Other, 0.0983);
  ]

let mega_clone_share = 0.42

let function_collisions_by_year =
  [
    (2015, 0);
    (2016, 0);
    (2017, 24);
    (2018, 5_341);
    (2019, 16_136);
    (2020, 28_448);
    (2021, 705_801);
    (2022, 808_493);
    (2023, 2_541);
  ]

let storage_collisions_by_year =
  [
    (2015, 0);
    (2016, 0);
    (2017, 0);
    (2018, 7);
    (2019, 37);
    (2020, 34);
    (2021, 725);
    (2022, 2_082);
    (2023, 137);
  ]

let duplicated_function_collision_share = 0.987

(* Fraction of a given year's proxies that are OwnableDelegateProxy-style
   clones, derived from Table 3's function-collision counts divided by the
   year's proxy volume; this reproduces both the 98.7% duplication share
   and Table 3's year shape. *)
let ownable_clone_rate year =
  let func =
    match List.assoc_opt year function_collisions_by_year with
    | Some n -> float_of_int n *. duplicated_function_collision_share
    | None -> 0.0
  in
  let share =
    match List.assoc_opt year yearly_share with Some s -> s | None -> 0.0
  in
  let proxies = share *. 36_000_000.0 *. proxy_rate_by_year year in
  if proxies <= 0.0 then 0.0 else Float.min 0.5 (func /. proxies)
let upgraded_proxy_fraction = 0.003

(* Upgrades only make sense for slot-based proxies (~10.9% of proxies), so
   the per-slot-proxy upgrade probability is ~2.5%. *)
let upgrade_rate_slot_proxy = 0.025
let mean_logic_contracts_per_upgraded = 1.32
let mainnet_total_alive = 36_000_000
let scale_denominator = 1000

let scale total mainnet_count =
  if mainnet_count <= 0 then 0
  else
    let scaled =
      int_of_float
        (Float.round
           (float_of_int mainnet_count
           *. (float_of_int total /. float_of_int mainnet_total_alive)))
    in
    max 1 scaled
