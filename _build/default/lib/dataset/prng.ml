type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, well-distributed, trivially seedable. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.pick_weighted: non-positive weight";
  let target = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.pick_weighted: empty"
    | [ (x, _) ] -> x
    | (x, w) :: rest -> if acc +. w >= target then x else go (acc +. w) rest
  in
  go 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
