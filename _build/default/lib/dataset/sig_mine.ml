type pair = { sig_a : string; sig_b : string; selector : string }

let mine ?(prefix = "fn") ~count () =
  if count <= 0 then []
  else begin
    let buckets : (string, string) Hashtbl.t = Hashtbl.create (1 lsl 17) in
    let found = ref [] in
    let n = ref 0 in
    let k = ref 0 in
    while !n < count do
      let name = Printf.sprintf "%s_%d()" prefix !k in
      incr k;
      let sel = Keccak.selector name in
      (match Hashtbl.find_opt buckets sel with
      | Some other when other <> name ->
          found := { sig_a = other; sig_b = name; selector = sel } :: !found;
          incr n;
          (* Retire the bucket so each selector yields one pair. *)
          Hashtbl.remove buckets sel
      | Some _ -> ()
      | None -> Hashtbl.replace buckets sel name)
    done;
    List.rev !found
  end

let find_collision_for ?(prefix = "crafted") ?(budget = 5_000_000) proto =
  let target = Keccak.selector proto in
  let rec search k =
    if k >= budget then None
    else
      let name = Printf.sprintf "%s_%d()" prefix k in
      if Keccak.selector name = target && name <> proto then Some name
      else search (k + 1)
  in
  search 0
