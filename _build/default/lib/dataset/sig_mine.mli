(** 4-byte selector collision mining.

    §2.3 of the paper observes that "creating a pair of functions that
    share the same 4-byte signature is remarkably easy and achievable
    within seconds" — a birthday search over candidate names.  The dataset
    generator uses this to inject fresh, distinct function collisions, and
    an example program demonstrates the claim directly. *)

type pair = {
  sig_a : string;  (** e.g. ["fn_12345()"] *)
  sig_b : string;
  selector : string;  (** The shared 4 bytes. *)
}

val mine : ?prefix:string -> count:int -> unit -> pair list
(** [mine ~count ()] finds [count] distinct colliding signature pairs by
    hashing candidate prototypes ["<prefix>_<k>()"] until enough buckets
    collide.  Deterministic for a given prefix. *)

val find_collision_for : ?prefix:string -> ?budget:int -> string -> string option
(** [find_collision_for proto] searches for a prototype whose selector
    equals [Keccak.selector proto] — the paper's 600-million-attempt
    anecdote, bounded by [budget] attempts (default 5 million; returns
    [None] when exhausted, which is the expected outcome for small
    budgets — the point of the anecdote is the cost asymmetry). *)
