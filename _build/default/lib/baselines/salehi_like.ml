module Address = Evm.Address
module Interp = Evm.Interp
module Host = Evm.Host

let replay_limit = 16

let is_proxy chain address =
  let txs =
    Chain.transactions_of chain address
    |> List.filter (fun tx -> tx.Chain.tx_to = Some address)
  in
  let txs = List.filteri (fun i _ -> i < replay_limit) txs in
  let host = Chain.host_at_head chain in
  List.exists
    (fun tx ->
      let forwarded = ref false in
      let tracer =
        {
          Interp.no_tracer with
          Interp.on_call =
            (fun ev ->
              if
                ev.Interp.kind = Interp.Delegatecall
                && Address.equal ev.Interp.context_address address
                && ev.Interp.input = tx.Chain.tx_input
                && ev.Interp.input <> ""
              then forwarded := true);
        }
      in
      let snapshot = host.Host.snapshot () in
      let _ =
        Interp.execute ~tracer ~step_limit:200_000 host
          (Interp.make_call ~caller:tx.Chain.tx_from ~target:address
             ~input:tx.Chain.tx_input ())
      in
      host.Host.revert_to snapshot;
      !forwarded)
    txs
