(** The Etherscan proxy-verification heuristic (§9.1): any contract whose
    bytecode contains a DELEGATECALL opcode is labelled a proxy.  Cheap,
    source-free — and, as Etherscan itself admits, prone to false positives
    on library-calling contracts.  ProxioN uses the same check only as a
    prefilter before emulation. *)

val is_proxy : string -> bool
(** [is_proxy code]: DELEGATECALL opcode presence. *)
