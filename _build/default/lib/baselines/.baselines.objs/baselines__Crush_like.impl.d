lib/baselines/crush_like.ml: Chain Evm Hashtbl List Proxion
