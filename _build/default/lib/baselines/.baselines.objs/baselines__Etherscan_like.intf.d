lib/baselines/etherscan_like.mli:
