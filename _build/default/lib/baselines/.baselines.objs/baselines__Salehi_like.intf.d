lib/baselines/salehi_like.mli: Chain Evm
