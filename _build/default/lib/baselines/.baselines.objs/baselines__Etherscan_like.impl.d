lib/baselines/etherscan_like.ml: Evm
