lib/baselines/salehi_like.ml: Chain Evm List
