lib/baselines/crush_like.mli: Chain Evm Proxion
