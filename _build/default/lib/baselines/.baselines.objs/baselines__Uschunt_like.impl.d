lib/baselines/uschunt_like.ml: Char Keccak List Minisol String
