lib/baselines/uschunt_like.mli: Evm Minisol
