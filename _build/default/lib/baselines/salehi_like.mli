(** The transaction-replay analysis of Salehi et al. (WTSC 2022): replay a
    contract's historical transactions under a tracer and call it an
    upgradeable proxy when some replayed transaction triggered a
    delegate call that forwarded the transaction's call data.  Dynamic and
    source-free like ProxioN, but gated on the existence of past
    transactions — freshly deployed or deliberately quiet contracts are
    invisible (§9.1). *)

val is_proxy : Chain.t -> Evm.Address.t -> bool
(** Replays up to {!replay_limit} historical external transactions whose
    target is the contract. *)

val replay_limit : int
