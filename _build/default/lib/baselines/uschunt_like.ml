module Ast = Minisol.Ast
module Layout = Minisol.Layout

type analysis =
  | Compile_error
  | Analyzed of { is_proxy : bool }

(* Any delegatecall in any statement — the Slither keyword check. *)
let rec stmt_has_delegatecall (s : Ast.stmt) =
  match s with
  | Ast.Delegate_forward _ | Ast.Delegate_sig _ -> true
  | Ast.If (_, a, b) ->
      List.exists stmt_has_delegatecall a || List.exists stmt_has_delegatecall b
  | Ast.While (_, body) -> List.exists stmt_has_delegatecall body
  | Ast.Store _ | Ast.Map_store _ | Ast.Store_slot _ | Ast.Require _
  | Ast.Return_value _ | Ast.Stop | Ast.Revert | Ast.Transfer _
  | Ast.Call_sig _ | Ast.Emit _ | Ast.Let _ ->
      false

let name_suggests_proxy name =
  let lower = String.lowercase_ascii name in
  let contains sub =
    let n = String.length lower and m = String.length sub in
    let rec at i = i + m <= n && (String.sub lower i m = sub || at (i + 1)) in
    at 0
  in
  contains "proxy"

let detect_proxy (c : Ast.contract) =
  let fallback_dc =
    match c.Ast.c_fallback with
    | Some body -> List.exists stmt_has_delegatecall body
    | None -> false
  in
  let any_dc =
    fallback_dc
    || List.exists
         (fun f -> List.exists stmt_has_delegatecall f.Ast.f_body)
         c.Ast.c_funcs
  in
  any_dc || name_suggests_proxy c.Ast.c_name

(* Deterministic pseudo-random compile failure keyed on the address: the
   rate models USCHunt halting on unknown compiler versions (§6.2). *)
let fails_to_compile ~failure_rate address =
  let h = Keccak.digest ("uschunt-compile" ^ address) in
  let bucket = Char.code h.[0] lor (Char.code h.[1] lsl 8) in
  float_of_int bucket /. 65536.0 < failure_rate

let analyze ?(failure_rate = 0.30) ~address c =
  if fails_to_compile ~failure_rate address then Compile_error
  else Analyzed { is_proxy = detect_proxy c }

let func_collisions ~proxy ~logic =
  let logic_selectors = Ast.selectors logic in
  List.filter (fun s -> List.mem s logic_selectors) (Ast.selectors proxy)

type storage_flag = {
  sf_slot : int;
  sf_proxy_var : string;
  sf_logic_var : string;
  sf_reason : [ `Type_mismatch | `Name_mismatch ];
}

let storage_collisions ~proxy ~logic =
  let proxy_layout = Layout.of_contract proxy in
  let logic_layout = Layout.of_contract logic in
  List.concat_map
    (fun (pe : Layout.entry) ->
      List.filter_map
        (fun (le : Layout.entry) ->
          if pe.Layout.e_slot <> le.Layout.e_slot then None
          else if
            pe.Layout.e_offset < le.Layout.e_offset + le.Layout.e_size
            && le.Layout.e_offset < pe.Layout.e_offset + pe.Layout.e_size
          then
            let type_mismatch =
              pe.Layout.e_offset <> le.Layout.e_offset
              || pe.Layout.e_size <> le.Layout.e_size
            in
            let name_mismatch =
              pe.Layout.e_var.Ast.v_name <> le.Layout.e_var.Ast.v_name
            in
            if type_mismatch then
              Some
                {
                  sf_slot = pe.Layout.e_slot;
                  sf_proxy_var = pe.Layout.e_var.Ast.v_name;
                  sf_logic_var = le.Layout.e_var.Ast.v_name;
                  sf_reason = `Type_mismatch;
                }
            else if name_mismatch then
              (* Same shape but different names: USCHunt flags these even
                 when one side is mere padding — its FP mode. *)
              Some
                {
                  sf_slot = pe.Layout.e_slot;
                  sf_proxy_var = pe.Layout.e_var.Ast.v_name;
                  sf_logic_var = le.Layout.e_var.Ast.v_name;
                  sf_reason = `Name_mismatch;
                }
            else None
          else None)
        logic_layout)
    proxy_layout
