(** A CRUSH-style analyzer (Ruaro et al., NDSS 2024) against the simulated
    chain, reproducing the behaviours the paper compares against:

    - {b transaction-history-gated}: proxies are found by scanning all
      historical transactions for DELEGATECALL internal calls, so contracts
      that never transacted (the hidden ones) are invisible;
    - {b library-call false positives}: any delegate-calling contract
      becomes a "proxy", including SafeMath-style library users that
      ProxioN's forwarding check excludes (§6.2);
    - {b storage collisions only}: no function-collision capability. *)

val proxy_pairs : Chain.t -> (Evm.Address.t * Evm.Address.t) list
(** Distinct (caller, callee) pairs of historical DELEGATECALLs — CRUSH's
    proxy/logic pair set. *)

val detected_proxies : Chain.t -> Evm.Address.t list
(** Distinct first components of {!proxy_pairs}. *)

val is_proxy : Chain.t -> Evm.Address.t -> bool

val storage_collisions :
  chain:Chain.t ->
  proxy:Evm.Address.t ->
  logic:Evm.Address.t ->
  Proxion.Storage_collision.collision list
(** CRUSH's engine is what ProxioN embeds (§5.2), so this delegates to the
    shared bytecode-path detector and runs exploit verification. *)
