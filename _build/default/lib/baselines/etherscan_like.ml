let is_proxy code = Evm.Disasm.has_opcode code Evm.Opcode.DELEGATECALL
