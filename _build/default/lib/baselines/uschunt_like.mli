(** A USCHunt-style analyzer (Bodell et al., USENIX Security 2023) over
    Minisol sources, reproducing the behaviours the paper measures
    against (§6.2-§6.3):

    - {b source-only}: contracts without source are invisible to it;
    - {b compilation failures}: roughly 30% of Sanctuary contracts fail to
      compile under default flags; modelled as a deterministic
      pseudo-random failure keyed on the contract address (the Minisol
      "compiler" cannot genuinely fail, so the rate is calibrated to the
      paper's report — see DESIGN.md);
    - {b Slither keyword detection}: a contract is called a proxy when its
      source uses [delegatecall] anywhere or is named like a proxy, which
      both misses some real proxies (after compile failures) and flags
      library callers;
    - {b layout comparison without usage analysis}: storage collisions are
      flagged whenever same-slot variables differ in name or type, so
      padding variables produce false positives (§6.3). *)

type analysis =
  | Compile_error  (** The modelled solc-version failure. *)
  | Analyzed of { is_proxy : bool }

val analyze :
  ?failure_rate:float -> address:Evm.Address.t -> Minisol.Ast.contract -> analysis
(** [failure_rate] defaults to 0.30 (the paper's observed USCHunt rate). *)

val detect_proxy : Minisol.Ast.contract -> bool
(** The Slither-like keyword/shape check, ignoring compile failures. *)

val func_collisions :
  proxy:Minisol.Ast.contract -> logic:Minisol.Ast.contract -> string list
(** Colliding selectors (same method as ProxioN on the source path, but
    only reachable for pairs that compile and are detected). *)

type storage_flag = {
  sf_slot : int;
  sf_proxy_var : string;
  sf_logic_var : string;
  sf_reason : [ `Type_mismatch | `Name_mismatch ];
}

val storage_collisions :
  proxy:Minisol.Ast.contract -> logic:Minisol.Ast.contract -> storage_flag list
(** Name/type comparison per slot with {e no} usage analysis — the source
    of its padding false positives. *)
