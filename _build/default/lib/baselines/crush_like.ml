module Address = Evm.Address

let proxy_pairs chain =
  let seen = Hashtbl.create 64 in
  let pairs = ref [] in
  List.iter
    (fun tx ->
      List.iter
        (fun ic ->
          if ic.Chain.ic_kind = Evm.Interp.Delegatecall then begin
            let key = (ic.Chain.ic_from, ic.Chain.ic_to) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              pairs := key :: !pairs
            end
          end)
        tx.Chain.tx_internal_calls)
    (Chain.all_transactions chain);
  List.rev !pairs

let detected_proxies chain =
  List.sort_uniq Address.compare (List.map fst (proxy_pairs chain))

let is_proxy chain address =
  List.exists (fun (p, _) -> Address.equal p address) (proxy_pairs chain)

let storage_collisions ~chain ~proxy ~logic =
  let collisions =
    Proxion.Storage_collision.detect
      ~proxy:(Proxion.Storage_collision.Bytecode (Chain.code_at chain proxy))
      ~logic:(Proxion.Storage_collision.Bytecode (Chain.code_at chain logic))
  in
  if collisions = [] then []
  else
    Proxion.Storage_collision.verify ~chain ~proxy_address:proxy
      ~logic_address:logic collisions
