(* Figure 3 walkthrough — the two-step detection, contract by contract.

   The paper's Figure 3 shows three contracts entering the pipeline:
     (1) one with no DELEGATECALL at all        -> rejected by disassembly;
     (2) one with DELEGATECALL that does NOT
         forward the crafted call data          -> rejected by emulation;
     (3) a real proxy whose fallback forwards   -> accepted, logic located.

   This example builds exactly those three, prints each decision with the
   evidence (opcode listing for step 1, probe verdict for step 2), and
   finishes by resolving the detected proxy's logic contract.

   Run with: dune exec examples/figure3_walkthrough.exe *)

module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"

let describe chain label addr =
  let code = Chain.code_at chain addr in
  Printf.printf "%s  (%d bytes of runtime)\n" label (String.length code);
  let has_dc = Evm.Disasm.has_opcode code Evm.Opcode.DELEGATECALL in
  Printf.printf "  step 1 (disassembly): DELEGATECALL %s\n"
    (if has_dc then "present -> continue to emulation" else "absent -> NOT a proxy");
  if has_dc then begin
    let host = Chain.host_at_head chain in
    let d = Proxion.Proxy_detect.detect ~host addr in
    Printf.printf "  step 2 (emulation with probe %s): "
      (Hexutil.to_hex d.Proxion.Proxy_detect.probe_selector);
    match d.Proxion.Proxy_detect.verdict with
    | Proxion.Proxy_detect.Proxy { target; source } ->
        Printf.printf "call data FORWARDED -> PROXY\n";
        Printf.printf "  logic contract: %s (%s)\n" (Evm.Address.to_hex target)
          (match source with
          | Proxion.Proxy_detect.Hardcoded -> "hard-coded"
          | Proxion.Proxy_detect.Storage_slot s -> "storage slot " ^ U256.to_hex s
          | Proxion.Proxy_detect.Computed -> "computed")
    | Proxion.Proxy_detect.Not_proxy_no_forward ->
        Printf.printf "probe not forwarded -> NOT a proxy\n"
    | Proxion.Proxy_detect.Not_proxy_no_delegatecall ->
        Printf.printf "unreachable\n"
    | Proxion.Proxy_detect.Emulation_error e ->
        Printf.printf "emulation error (%s)\n" e
  end;
  print_newline ()

let () =
  let chain = Chain.create () in
  let deploy ast =
    match Chain.deploy chain ~from:alice ~init_code:(Codegen.init_code ast) () with
    | Ok a -> a
    | Error e -> failwith e
  in
  (* (1) A plain contract: the counter has no DELEGATECALL anywhere. *)
  let plain = deploy (Patterns.counter_logic ()) in
  (* (2) A library caller: DELEGATECALL exists, but only inside a function
     body — the crafted probe falls into the reverting fallback. *)
  let library_user = deploy (Patterns.library_caller ~lib:plain) in
  (* (3) A genuine proxy wired to a logic contract. *)
  let proxy = deploy (Patterns.slot_var_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 plain);

  print_endline "Figure 3: three contracts enter the two-step check\n";
  describe chain "contract (1): plain counter" plain;
  describe chain "contract (2): SafeMath-style library caller" library_user;
  describe chain "contract (3): upgradeable proxy" proxy;

  (* Show a snippet of contract 2's disassembly around its DELEGATECALL:
     the opcode is real, yet the contract is not a proxy. *)
  print_endline "-- contract (2)'s DELEGATECALL site (not in the fallback) --";
  let code = Chain.code_at chain library_user in
  let listing = Evm.Disasm.disassemble code in
  let around =
    let rec find i = function
      | [] -> []
      | instr :: rest ->
          if Evm.Opcode.equal instr.Evm.Disasm.opcode Evm.Opcode.DELEGATECALL
          then List.filteri (fun j _ -> j >= max 0 (i - 4) && j <= i + 1) listing
          else find (i + 1) rest
    in
    find 0 listing
  in
  print_endline (Evm.Disasm.format_listing around)
