(* Selector mining — the paper's 2.3 observation, demonstrated.

   "Creating a pair of functions that share the same 4-byte signature is
   remarkably easy and achievable within seconds on even modest computers."

   A birthday search over candidate prototypes finds colliding pairs in
   well under a second; finding a collision against one FIXED selector
   (like free_ether_withdrawal()) costs ~2^32 attempts — the asymmetry the
   paper quantifies with its 600-million-attempt anecdote.

   Run with: dune exec examples/selector_mining.exe *)

let () =
  Printf.printf "the paper's example pair:\n";
  Printf.printf "  free_ether_withdrawal() -> %s\n"
    (Keccak.selector_hex "free_ether_withdrawal()");
  Printf.printf "  impl_LUsXCWD2AKCc()     -> %s\n\n"
    (Keccak.selector_hex "impl_LUsXCWD2AKCc()");

  let t0 = Unix.gettimeofday () in
  let pairs = Dataset.Sig_mine.mine ~prefix:"demo" ~count:10 () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "10 fresh colliding pairs mined in %.2f s:\n" elapsed;
  List.iter
    (fun p ->
      Printf.printf "  %-16s == %-16s -> %s\n" p.Dataset.Sig_mine.sig_a
        p.Dataset.Sig_mine.sig_b
        (Hexutil.to_hex p.Dataset.Sig_mine.selector))
    pairs;

  print_newline ();
  let budget = 300_000 in
  Printf.printf
    "targeted search against free_ether_withdrawal() with a %d-attempt budget:\n"
    budget;
  (match Dataset.Sig_mine.find_collision_for ~budget "free_ether_withdrawal()" with
  | Some name -> Printf.printf "  found %s (lucky!)\n" name
  | None ->
      Printf.printf
        "  none found — as expected: a fixed target needs ~2^32 attempts \
         (the paper reports ~600M attempts / 1.5 h on a laptop)\n")
