examples/audius_takeover.ml: Chain Evm List Minisol Printf Proxion U256
