examples/landscape_survey.mli:
