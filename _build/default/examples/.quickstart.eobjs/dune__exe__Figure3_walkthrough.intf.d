examples/figure3_walkthrough.mli:
