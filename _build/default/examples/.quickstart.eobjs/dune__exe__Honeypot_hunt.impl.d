examples/honeypot_hunt.ml: Chain Evm Hexutil Keccak List Minisol Printf Proxion String U256
