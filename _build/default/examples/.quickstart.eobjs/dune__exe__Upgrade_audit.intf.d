examples/upgrade_audit.mli:
