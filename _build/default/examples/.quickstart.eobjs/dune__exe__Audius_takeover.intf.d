examples/audius_takeover.mli:
