examples/honeypot_hunt.mli:
