examples/landscape_survey.ml: Array Dataset Experiments Printf Sys
