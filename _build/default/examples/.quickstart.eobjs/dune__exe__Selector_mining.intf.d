examples/selector_mining.mli:
