examples/upgrade_audit.ml: Array Chain Dataset Evm Hashtbl Hexutil List Minisol Option Printf Proxion Report Sys U256
