examples/quickstart.ml: Chain Evm List Minisol Printf Proxion String U256
