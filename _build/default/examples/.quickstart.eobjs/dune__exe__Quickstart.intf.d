examples/quickstart.mli:
