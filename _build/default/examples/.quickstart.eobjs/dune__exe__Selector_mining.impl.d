examples/selector_mining.ml: Dataset Hexutil Keccak List Printf Unix
