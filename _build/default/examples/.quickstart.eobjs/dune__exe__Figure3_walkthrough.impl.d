examples/figure3_walkthrough.ml: Chain Evm Hexutil List Minisol Printf Proxion String U256
