(* Quickstart: the ProxioN public API in one tour.

   We deploy an upgradeable proxy and its logic contract on the simulated
   chain, then run every stage of the pipeline on it: prefilter + emulated
   detection, logic resolution through history (Algorithm 1), standard
   classification, and the collision checks.

   Run with: dune exec examples/quickstart.exe *)

module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"

let () =
  (* 1. A chain with a logic contract and a slot-based proxy. *)
  let chain = Chain.create () in
  let deploy ast =
    match Chain.deploy chain ~from:alice ~init_code:(Codegen.init_code ast) () with
    | Ok addr -> addr
    | Error e -> failwith e
  in
  let counter_v1 = deploy (Patterns.counter_logic ()) in
  let proxy = deploy (Patterns.slot_var_proxy ()) in
  Printf.printf "proxy deployed at  %s\n" (Evm.Address.to_hex proxy);
  Printf.printf "logic v1 deployed  %s\n" (Evm.Address.to_hex counter_v1);

  (* 2. Point the proxy at v1, use it, then upgrade to v2. *)
  let set_logic logic =
    ignore
      (Chain.call chain ~from:alice ~to_:proxy
         ~input:(Evm.Abi.encode_call ~signature:"setLogic(address)" [ Evm.Abi.Addr logic ])
         ())
  in
  set_logic counter_v1;
  Chain.advance_blocks chain 100;
  let counter_v2 = deploy (Patterns.counter_logic ()) in
  set_logic counter_v2;
  Printf.printf "logic v2 deployed  %s (upgrade executed)\n\n"
    (Evm.Address.to_hex counter_v2);

  (* 3. ProxioN detection: no source, no transaction history needed. *)
  let host = Chain.host_at_head chain in
  let detection = Proxion.Proxy_detect.detect ~host proxy in
  (match detection.Proxion.Proxy_detect.verdict with
  | Proxion.Proxy_detect.Proxy { target; source } ->
      Printf.printf "detected: proxy forwarding to %s\n" (Evm.Address.to_hex target);
      (match source with
      | Proxion.Proxy_detect.Storage_slot slot ->
          Printf.printf "logic address lives in storage slot %s\n" (U256.to_hex slot)
      | Proxion.Proxy_detect.Hardcoded -> print_endline "logic address is hard-coded"
      | Proxion.Proxy_detect.Computed -> print_endline "logic address is computed");
      (* 4. Recover the full logic history with Algorithm 1. *)
      let resolution = Proxion.Logic_resolve.resolve chain proxy source in
      Printf.printf "logic history (%d getStorageAt calls): %s\n"
        resolution.Proxion.Logic_resolve.api_calls
        (String.concat " -> "
           (List.map Evm.Address.to_hex resolution.Proxion.Logic_resolve.historical));
      Printf.printf "upgrades observed: %d\n"
        resolution.Proxion.Logic_resolve.upgrade_count;
      (* 5. Classify the design standard. *)
      Printf.printf "standard: %s\n\n"
        (Proxion.Standard_classify.to_string
           (Proxion.Standard_classify.classify
              ~code:(Chain.code_at chain proxy) source));
      (* 6. Collision checks for every proxy/logic pair. *)
      List.iter
        (fun logic ->
          let func =
            Proxion.Func_collision.detect
              ~proxy:(Proxion.Func_collision.Bytecode (Chain.code_at chain proxy))
              ~logic:(Proxion.Func_collision.Bytecode (Chain.code_at chain logic))
          in
          let storage =
            Proxion.Storage_collision.detect
              ~proxy:(Proxion.Storage_collision.Bytecode (Chain.code_at chain proxy))
              ~logic:(Proxion.Storage_collision.Bytecode (Chain.code_at chain logic))
          in
          Printf.printf "pair with %s: %d function collisions, %d storage collision candidates\n"
            (Evm.Address.to_hex logic) (List.length func) (List.length storage))
        resolution.Proxion.Logic_resolve.historical
  | v ->
      Printf.printf "unexpected verdict: %s\n"
        (match v with
        | Proxion.Proxy_detect.Not_proxy_no_delegatecall -> "no delegatecall"
        | Proxion.Proxy_detect.Not_proxy_no_forward -> "no forward"
        | Proxion.Proxy_detect.Emulation_error e -> e
        | Proxion.Proxy_detect.Proxy _ -> assert false));

  (* Note: counter_logic keeps its counter in slot 0, which overlaps the
     proxy's own owner variable — the pipeline flags it above.  This is the
     storage-collision hazard of 2.3, visible even in a toy setup. *)
  print_newline ();
  print_endline "quickstart complete."
