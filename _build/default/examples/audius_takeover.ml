(* Audius takeover — the paper's Listing 2 and 2.3 exploit, replayed.

   The proxy keeps its owner in storage slot 0; the logic contract's
   initialized/initializing flags land in the same slot, and initialize()
   re-assigns the owner.  Because the owner write clobbers the flags, the
   function can be called again and again: anyone can seize the contract.
   ProxioN detects the collision (source and bytecode paths), CRUSH-style
   verification proves it with a real transaction, and we watch Mallory
   take the governance over.

   Run with: dune exec examples/audius_takeover.exe *)

module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"
let mallory = Evm.Address.of_hex "0x0000000000000000000000000000000000ba0bab"

let owner_of host proxy =
  Evm.Address.to_hex
    (Evm.Address.of_u256 (host.Evm.Host.get_storage proxy U256.zero))

let () =
  let chain = Chain.create () in
  let host = Chain.host_at_head chain in
  let deploy ~from ast =
    match Chain.deploy chain ~from ~init_code:(Codegen.init_code ast) () with
    | Ok a -> a
    | Error e -> failwith e
  in
  let logic = deploy ~from:alice (Patterns.audius_logic ()) in
  let proxy = deploy ~from:alice (Patterns.audius_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  Printf.printf "governance proxy %s\n" (Evm.Address.to_hex proxy);
  Printf.printf "owner before attack: %s (alice)\n\n" (owner_of host proxy);

  (* 1. Static detection, source path. *)
  let collisions =
    Proxion.Storage_collision.detect
      ~proxy:(Proxion.Storage_collision.Source (Patterns.audius_proxy ()))
      ~logic:(Proxion.Storage_collision.Source (Patterns.audius_logic ()))
  in
  Printf.printf "ProxioN finds %d storage-collision candidate(s) at:\n"
    (List.length collisions);
  List.iter
    (fun c ->
      Printf.printf
        "  %s  proxy sees [off %d, %d bytes]  logic sees [off %d, %d bytes]%s\n"
        (Proxion.Storage_access.slot_id_to_string c.Proxion.Storage_collision.slot)
        c.Proxion.Storage_collision.proxy_region.Proxion.Storage_collision.g_offset
        c.Proxion.Storage_collision.proxy_region.Proxion.Storage_collision.g_width
        c.Proxion.Storage_collision.logic_region.Proxion.Storage_collision.g_offset
        c.Proxion.Storage_collision.logic_region.Proxion.Storage_collision.g_width
        (if c.Proxion.Storage_collision.sensitive then "  [access-control slot]" else ""))
    collisions;

  (* 2. CRUSH-style verification: execute a test transaction. *)
  let verified =
    Proxion.Storage_collision.verify ~chain ~proxy_address:proxy
      ~logic_address:logic collisions
  in
  Printf.printf "exploit verified by EVM execution: %b\n\n"
    (List.exists (fun c -> c.Proxion.Storage_collision.verified) verified);

  (* 3. The actual attack. *)
  print_endline "-- Mallory attacks --";
  let call_initialize from =
    Chain.call chain ~from ~to_:proxy
      ~input:(Evm.Abi.encode_call ~signature:"initialize()" [])
      ()
  in
  let r1 = call_initialize mallory in
  Printf.printf "initialize() #1: %s; owner is now %s\n"
    (match r1.Chain.tx_status with
    | Evm.Interp.Returned -> "succeeded"
    | _ -> "failed")
    (owner_of host proxy);
  let r2 = call_initialize mallory in
  Printf.printf
    "initialize() #2: %s (the flags were clobbered, so it stays callable)\n"
    (match r2.Chain.tx_status with
    | Evm.Interp.Returned -> "succeeded AGAIN"
    | _ -> "failed");
  Printf.printf "\nfinal owner: %s %s\n" (owner_of host proxy)
    (if owner_of host proxy = Evm.Address.to_hex mallory then "(MALLORY — takeover complete)"
     else "")
