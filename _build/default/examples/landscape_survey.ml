(* Landscape survey — a miniature of the paper's section 7.

   Generates a synthetic Ethereum population (default 4,000 contracts at
   the paper's measured distributions), runs the full ProxioN pipeline over
   it, and prints all the section-7 tables and figures.

   Run with: dune exec examples/landscape_survey.exe [-- TOTAL] *)

let () =
  let total =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4_000
  in
  let config = { Dataset.Generate.default_config with Dataset.Generate.total } in
  Printf.printf "generating a %d-contract landscape (seed %d)...\n%!" total
    config.Dataset.Generate.seed;
  let t = Experiments.Landscape.prepare ~config () in
  print_string (Experiments.Landscape.summary t);
  print_newline ();
  print_string (Experiments.Landscape.fig2 t);
  print_newline ();
  print_string (Experiments.Landscape.fig4 t);
  print_newline ();
  print_string (Experiments.Landscape.table3 t);
  print_newline ();
  print_string (Experiments.Landscape.fig5 t);
  print_newline ();
  print_string (Experiments.Landscape.table4 t);
  print_newline ();
  print_string (Experiments.Landscape.fig6 t)
