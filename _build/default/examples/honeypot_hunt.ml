(* Honeypot hunt — the paper's Listing 1, end to end.

   An attacker deploys a proxy whose hidden function impl_LUsXCWD2AKCc()
   collides (selector 0xdf4a3106) with the logic contract's enticing
   free_ether_withdrawal().  A victim calls the "free withdrawal" and the
   proxy's hidden function runs instead.  ProxioN then uncovers the
   collision from bytecode alone — neither contract publishes source.

   Run with: dune exec examples/honeypot_hunt.exe *)

module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

let attacker = Evm.Address.of_hex "0x0000000000000000000000000000000000a77ac4"
let victim = Evm.Address.of_hex "0x000000000000000000000000000000000071c717"

let () =
  let chain = Chain.create () in
  let host = Chain.host_at_head chain in
  (* A token standing in for USDT at the address Listing 1 hard-codes. *)
  Evm.Host.with_code host Patterns.usdt_address
    (Codegen.runtime (Patterns.erc20ish_logic ()));

  (* The attacker deploys both halves and wires the proxy to the logic. *)
  let deploy ast =
    match
      Chain.deploy chain ~from:attacker ~init_code:(Codegen.init_code ast) ()
    with
    | Ok a -> a
    | Error e -> failwith e
  in
  let logic = deploy (Patterns.honeypot_logic ()) in
  let proxy = deploy (Patterns.honeypot_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  Chain.fund chain proxy (U256.of_decimal "50000000000000000000");
  Chain.fund chain victim (U256.of_int 1_000_000);
  Printf.printf "honeypot proxy: %s\n" (Evm.Address.to_hex proxy);
  Printf.printf "enticing logic: %s (promises 10 ETH to any caller)\n\n"
    (Evm.Address.to_hex logic);

  (* The victim reads the logic contract, sees free_ether_withdrawal(),
     and calls it THROUGH THE PROXY. *)
  let before = host.Evm.Host.get_balance victim in
  let record =
    Chain.call chain ~from:victim ~to_:proxy
      ~input:(Evm.Abi.encode_call ~signature:"free_ether_withdrawal()" [])
      ()
  in
  let after = host.Evm.Host.get_balance victim in
  Printf.printf "victim calls free_ether_withdrawal() via the proxy...\n";
  Printf.printf "  tx status: %s\n"
    (match record.Chain.tx_status with
    | Evm.Interp.Returned -> "success (so it seemed)"
    | Evm.Interp.Reverted -> "reverted"
    | Evm.Interp.Failed e -> Evm.Interp.error_to_string e);
  Printf.printf "  victim balance change: %s wei (expected +10 ETH!)\n"
    (U256.to_decimal (U256.sub after before));
  Printf.printf "  internal calls made: %s\n\n"
    (String.concat ", "
       (List.map
          (fun ic ->
            Printf.sprintf "%s->%s"
              (Evm.Interp.call_kind_to_string ic.Chain.ic_kind)
              (Evm.Address.to_hex ic.Chain.ic_to))
          record.Chain.tx_internal_calls));

  (* Now the hunt: ProxioN analyzes the pair from BYTECODE ONLY. *)
  print_endline "-- ProxioN analysis (bytecode only, no source, pre-victim) --";
  let detection = Proxion.Proxy_detect.detect ~host proxy in
  Printf.printf "proxy detection: %s\n"
    (if Proxion.Proxy_detect.is_proxy detection then "PROXY (forwarding fallback confirmed)"
     else "not a proxy");
  let collisions =
    Proxion.Func_collision.detect
      ~proxy:(Proxion.Func_collision.Bytecode (Chain.code_at chain proxy))
      ~logic:(Proxion.Func_collision.Bytecode (Chain.code_at chain logic))
  in
  List.iter
    (fun c ->
      Printf.printf
        "FUNCTION COLLISION on selector %s: calls intended for the logic are \
         captured by the proxy\n"
        (Hexutil.to_hex c.Proxion.Func_collision.selector))
    collisions;
  (* Honeypot classification: bait + trap on the same selector. *)
  let verdict =
    Proxion.Honeypot.classify
      ~proxy:(Proxion.Func_collision.Bytecode (Chain.code_at chain proxy))
      ~logic:(Proxion.Func_collision.Bytecode (Chain.code_at chain logic))
  in
  Printf.printf "honeypot classification: %s\n"
    (if verdict.Proxion.Honeypot.is_honeypot then
       "HONEYPOT (logic baits the caller, proxy moves assets)"
     else "not a honeypot");
  Printf.printf
    "\n(the paper's example selector: free_ether_withdrawal() = %s = \
     impl_LUsXCWD2AKCc())\n"
    (Keccak.selector_hex "free_ether_withdrawal()");
  print_newline ();
  print_endline "-- what the victim would have seen on Etherscan (logic source) --";
  print_string (Minisol.Pretty.contract (Patterns.honeypot_logic ()))
