test/t_hexutil.ml: Alcotest Gen Hexutil QCheck QCheck_alcotest
