test/t_state_vectors.ml: Alcotest Array Evm Filename Hexutil List Option Printf Report Sys U256
