test/t_keccak.ml: Alcotest Gen Keccak QCheck QCheck_alcotest String U256
