test/t_evm_ops.ml: Abi Address Alcotest Asm Evm Gas Hexutil Host Interp List Opcode Printf QCheck QCheck_alcotest String Trace U256
