test/t_chain.ml: Alcotest Chain Chain_rpc Evm Hexutil Keccak List Minisol Proxion String U256
