test/t_minisol.ml: Alcotest Ast Chain Codegen Evalref Evm Gen Hexutil Keccak Layout List Minisol Patterns Pretty Printf QCheck QCheck_alcotest String U256
