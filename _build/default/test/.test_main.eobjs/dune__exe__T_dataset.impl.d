test/t_dataset.ml: Alcotest Chain Dataset Hashtbl Keccak Lazy List Printf Proxion
