test/t_baselines.ml: Alcotest Baselines Chain Evm Hexutil Keccak List Minisol Printf Proxion String U256
