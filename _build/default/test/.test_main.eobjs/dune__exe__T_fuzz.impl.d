test/t_fuzz.ml: Evm Hexutil List Proxion QCheck QCheck_alcotest
