test/t_u256.ml: Alcotest List QCheck QCheck_alcotest String U256
