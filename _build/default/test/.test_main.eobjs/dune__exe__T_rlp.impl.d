test/t_rlp.ml: Alcotest Hexutil List Printf QCheck QCheck_alcotest Rlp String U256
