test/t_evm.ml: Abi Address Alcotest Asm Cfg Disasm Evm Hexutil Host Interp Keccak List Opcode Printf Rlp Stack_check String U256
