test/test_main.ml: Alcotest T_baselines T_chain T_dataset T_differential T_evm T_evm_ops T_experiments T_fuzz T_hexutil T_keccak T_minisol T_proxion T_report T_rlp T_state_vectors T_u256
