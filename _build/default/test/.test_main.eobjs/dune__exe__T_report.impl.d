test/t_report.ml: Alcotest List Printf QCheck QCheck_alcotest Report String
