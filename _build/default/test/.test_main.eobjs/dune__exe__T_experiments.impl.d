test/t_experiments.ml: Alcotest Array Dataset Experiments List Printf Report String
