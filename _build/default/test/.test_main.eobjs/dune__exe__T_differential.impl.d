test/t_differential.ml: Alcotest Dataset Evm Keccak List Minisol Printf U256
