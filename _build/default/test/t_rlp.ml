let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let enc item = Hexutil.to_hex (Rlp.encode item)

(* Vectors from the Ethereum wiki RLP specification. *)
let test_strings () =
  check_s "dog" "0x83646f67" (enc (Rlp.String "dog"));
  check_s "empty string" "0x80" (enc (Rlp.String ""));
  check_s "single low byte" "0x0f" (enc (Rlp.String "\x0f"));
  check_s "single byte 0x80 gets prefix" "0x8180" (enc (Rlp.String "\x80"));
  check_s "55 bytes stays short form"
    ("0xb7" ^ String.concat "" (List.init 55 (fun _ -> "61")))
    (enc (Rlp.String (String.make 55 'a')));
  check_s "56 bytes switches to long form"
    ("0xb838" ^ String.concat "" (List.init 56 (fun _ -> "61")))
    (enc (Rlp.String (String.make 56 'a')))

let test_lists () =
  check_s "cat dog list" "0xc88363617483646f67"
    (enc (Rlp.List [ Rlp.String "cat"; Rlp.String "dog" ]));
  check_s "empty list" "0xc0" (enc (Rlp.List []));
  check_s "nested set-theoretic three"
    "0xc7c0c1c0c3c0c1c0"
    (enc
       Rlp.(
         List
           [
             List [];
             List [ List [] ];
             List [ List []; List [ List [] ] ];
           ]))

let test_encode_int () =
  check_s "zero is empty" "" (Rlp.encode_int 0);
  check_s "one byte" "\x7f" (Rlp.encode_int 0x7f);
  check_s "two bytes" "\x04\x00" (Rlp.encode_int 1024)

let test_decode () =
  let roundtrip item = Rlp.decode (Rlp.encode item) = item in
  check_b "string" true (roundtrip (Rlp.String "hello rlp"));
  check_b "long string" true (roundtrip (Rlp.String (String.make 300 'x')));
  check_b "list" true
    (roundtrip (Rlp.List [ Rlp.String "a"; Rlp.List [ Rlp.String "b" ] ]));
  check_b "trailing bytes rejected" true
    (Rlp.decode_opt (Rlp.encode (Rlp.String "dog") ^ "\x00") = None);
  check_b "non-canonical single byte rejected" true
    (Rlp.decode_opt "\x81\x05" = None);
  check_b "truncated rejected" true (Rlp.decode_opt "\x83do" = None)

(* Well-known vector: the first contract created by
   0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0 (nonce 0). *)
let test_contract_address () =
  let sender = Hexutil.of_hex "0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0" in
  check_s "nonce 0" "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d"
    (Hexutil.to_hex (Rlp.contract_address ~sender ~nonce:0));
  check_s "nonce 1" "0x343c43a37d37dff08ae8c4a11544c718abb4fcf8"
    (Hexutil.to_hex (Rlp.contract_address ~sender ~nonce:1));
  check_b "different nonce, different address" true
    (Rlp.contract_address ~sender ~nonce:2
    <> Rlp.contract_address ~sender ~nonce:3)

(* EIP-1014 example 0: sender 0x0000...00, salt 0, init code 0x00. *)
let test_create2_address () =
  let sender = String.make 20 '\000' in
  check_s "eip-1014 example"
    "0x4d1a2e2bb4f88f0250f26ffff098b0b30b26bf38"
    (Hexutil.to_hex
       (Rlp.create2_address ~sender ~salt:U256.zero ~init_code:"\x00"))

let qcheck_roundtrip =
  let rec gen_item depth =
    let open QCheck.Gen in
    if depth = 0 then map (fun s -> Rlp.String s) (string_size (int_bound 80))
    else
      frequency
        [
          (3, map (fun s -> Rlp.String s) (string_size (int_bound 80)));
          (1, map (fun l -> Rlp.List l) (list_size (int_bound 4) (gen_item (depth - 1))));
        ]
  in
  let rec print_item = function
    | Rlp.String s -> Printf.sprintf "S(%s)" (Hexutil.to_hex s)
    | Rlp.List l -> "L[" ^ String.concat ";" (List.map print_item l) ^ "]"
  in
  QCheck.Test.make ~name:"rlp round-trip" ~count:500
    (QCheck.make ~print:print_item (gen_item 3))
    (fun item -> Rlp.decode (Rlp.encode item) = item)

let suite =
  [
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "lists" `Quick test_lists;
    Alcotest.test_case "encode_int" `Quick test_encode_int;
    Alcotest.test_case "decode" `Quick test_decode;
    Alcotest.test_case "contract_address" `Quick test_contract_address;
    Alcotest.test_case "create2_address" `Quick test_create2_address;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
