let check_s = Alcotest.(check string)

(* Reference vectors from the original Keccak submission / Ethereum. *)
let test_empty () =
  check_s "keccak256(\"\")"
    "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
    (Keccak.digest_hex "")

let test_abc () =
  check_s "keccak256(\"abc\")"
    "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
    (Keccak.digest_hex "abc")

let test_long () =
  (* Exercises multi-block absorption: 200 'a's span two rate blocks.
     Reference value from the Keccak-256 of "aaa...a" (200 bytes). *)
  check_s "200-byte message"
    "0x96ea54061def936c4be90b518992fdc6f12f535068a256229aca54267b4d084d"
    (Keccak.digest_hex (String.make 200 'a'));
  (* A message of exactly the 136-byte rate forces the all-padding block. *)
  check_s "136-byte message"
    "0xa6c4d403279fe3e0af03729caada8374b5ca54d8065329a3ebcaeb4b60aa386e"
    (Keccak.digest_hex (String.make 136 'a'))

let test_selectors () =
  check_s "transfer(address,uint256)" "0xa9059cbb"
    (Keccak.selector_hex "transfer(address,uint256)");
  check_s "balanceOf(address)" "0x70a08231" (Keccak.selector_hex "balanceOf(address)");
  check_s "implementation()" "0x5c60da1b" (Keccak.selector_hex "implementation()");
  check_s "proxyType()" "0x4555d5c9" (Keccak.selector_hex "proxyType()")

(* The paper's running example (Listing 1): free_ether_withdrawal() and the
   crafted impl_LUsXCWD2AKCc() share selector 0xdf4a3106. *)
let test_paper_collision () =
  check_s "free_ether_withdrawal()" "0xdf4a3106"
    (Keccak.selector_hex "free_ether_withdrawal()");
  check_s "colliding pair" (Keccak.selector_hex "free_ether_withdrawal()")
    (Keccak.selector_hex "impl_LUsXCWD2AKCc()")

(* EIP constants used by the standard classifier (Table 4). *)
let test_eip_slots () =
  check_s "EIP-1822 PROXIABLE slot"
    "0xc5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7"
    (Keccak.digest_hex "PROXIABLE");
  (* EIP-1967 slot = keccak("eip1967.proxy.implementation") - 1. *)
  let raw = U256.of_bytes_be (Keccak.digest "eip1967.proxy.implementation") in
  check_s "EIP-1967 implementation slot"
    "0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc"
    (U256.to_hex_padded (U256.pred raw))

let qcheck_deterministic =
  QCheck.Test.make ~name:"deterministic and 32 bytes" ~count:200
    QCheck.(string_of_size (Gen.int_bound 300))
    (fun s -> Keccak.digest s = Keccak.digest s && String.length (Keccak.digest s) = 32)

let qcheck_distinct =
  QCheck.Test.make ~name:"distinct inputs hash differently" ~count:200
    QCheck.(pair (string_of_size (Gen.int_bound 64)) (string_of_size (Gen.int_bound 64)))
    (fun (a, b) -> a = b || Keccak.digest a <> Keccak.digest b)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "abc" `Quick test_abc;
    Alcotest.test_case "long" `Quick test_long;
    Alcotest.test_case "selectors" `Quick test_selectors;
    Alcotest.test_case "paper collision 0xdf4a3106" `Quick test_paper_collision;
    Alcotest.test_case "eip slots" `Quick test_eip_slots;
    QCheck_alcotest.to_alcotest qcheck_deterministic;
    QCheck_alcotest.to_alcotest qcheck_distinct;
  ]
