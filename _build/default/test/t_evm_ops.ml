(* Differential testing of the interpreter's ALU against the U256 reference
   implementation: for each opcode, random operands are pushed, the opcode
   executed, and the returned word compared with the pure function.  This
   pins the interpreter's stack order conventions (a op b with a popped
   first) and the U256 semantics to each other. *)

open Evm

let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u
let check_b = Alcotest.(check bool)
let target = Address.of_hex "0x00000000000000000000000000000000000000f1"
let caller = Address.of_hex "0x00000000000000000000000000000000000000f2"

(* Run [items] and return the top-of-stack word via MSTORE/RETURN. *)
let eval_program items =
  let code =
    Asm.assemble
      (items
      @ [
          Asm.Push_int 0;
          Asm.Op Opcode.MSTORE;
          Asm.Push_int 32;
          Asm.Push_int 0;
          Asm.Op Opcode.RETURN;
        ])
  in
  let host = Host.in_memory () in
  Host.with_code host target code;
  let r = Interp.execute host (Interp.make_call ~caller ~target ~input:"" ()) in
  match r.Interp.status with
  | Interp.Returned -> Abi.decode_uint r.Interp.return_data
  | Interp.Reverted -> Alcotest.fail "program reverted"
  | Interp.Failed e -> Alcotest.failf "program failed: %s" (Interp.error_to_string e)

(* Compute [a OP b]: EVM pops the FIRST operand from the top, so push b
   first, then a. *)
let eval_binop op a b =
  eval_program [ Asm.Push_u256 b; Asm.Push_u256 a; Asm.Op op ]

let eval_ternop op a b c =
  eval_program [ Asm.Push_u256 c; Asm.Push_u256 b; Asm.Push_u256 a; Asm.Op op ]

let arb_u256 =
  let gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map U256.of_bytes_be
          (QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.return 32));
        QCheck.Gen.map U256.of_int (QCheck.Gen.int_bound 1000);
        QCheck.Gen.return U256.zero;
        QCheck.Gen.return U256.one;
        QCheck.Gen.return U256.max_value;
      ]
  in
  QCheck.make ~print:U256.to_hex gen

let bool_word b = if b then U256.one else U256.zero

let binop_cases =
  [
    ("ADD", Opcode.ADD, U256.add);
    ("MUL", Opcode.MUL, U256.mul);
    ("SUB", Opcode.SUB, U256.sub);
    ("DIV", Opcode.DIV, U256.div);
    ("SDIV", Opcode.SDIV, U256.sdiv);
    ("MOD", Opcode.MOD, U256.rem);
    ("SMOD", Opcode.SMOD, U256.smod);
    ("EXP", Opcode.EXP, U256.exp);
    ("AND", Opcode.AND, U256.logand);
    ("OR", Opcode.OR, U256.logor);
    ("XOR", Opcode.XOR, U256.logxor);
    ("LT", Opcode.LT, fun a b -> bool_word (U256.lt a b));
    ("GT", Opcode.GT, fun a b -> bool_word (U256.gt a b));
    ("SLT", Opcode.SLT, fun a b -> bool_word (U256.slt a b));
    ("SGT", Opcode.SGT, fun a b -> bool_word (U256.sgt a b));
    ("EQ", Opcode.EQ, fun a b -> bool_word (U256.equal a b));
  ]

let differential_binop_tests =
  List.map
    (fun (name, op, reference) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "EVM %s == U256 reference" name)
        ~count:60
        (QCheck.pair arb_u256 arb_u256)
        (fun (a, b) ->
          (* EXP with a huge exponent is slow in the reference too; clamp. *)
          let b =
            if name = "EXP" then U256.logand b (U256.of_int 0xffff) else b
          in
          U256.equal (eval_binop op a b) (reference a b)))
    binop_cases

let differential_ternop_tests =
  [
    QCheck.Test.make ~name:"EVM ADDMOD == U256.addmod" ~count:60
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, m) -> U256.equal (eval_ternop Opcode.ADDMOD a b m) (U256.addmod a b m));
    QCheck.Test.make ~name:"EVM MULMOD == U256.mulmod" ~count:60
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, m) -> U256.equal (eval_ternop Opcode.MULMOD a b m) (U256.mulmod a b m));
  ]

let shift_tests =
  (* SHL/SHR/SAR pop the shift amount first. *)
  let arb_shift = QCheck.int_bound 300 in
  [
    QCheck.Test.make ~name:"EVM SHL == U256.shift_left" ~count:60
      (QCheck.pair arb_shift arb_u256)
      (fun (n, v) ->
        U256.equal
          (eval_binop Opcode.SHL (U256.of_int n) v)
          (U256.shift_left v n));
    QCheck.Test.make ~name:"EVM SHR == U256.shift_right" ~count:60
      (QCheck.pair arb_shift arb_u256)
      (fun (n, v) ->
        U256.equal
          (eval_binop Opcode.SHR (U256.of_int n) v)
          (U256.shift_right v n));
    QCheck.Test.make ~name:"EVM SAR == U256.shift_right_arith" ~count:60
      (QCheck.pair arb_shift arb_u256)
      (fun (n, v) ->
        U256.equal
          (eval_binop Opcode.SAR (U256.of_int n) v)
          (U256.shift_right_arith v n));
    QCheck.Test.make ~name:"EVM BYTE == U256.byte_at" ~count:60
      (QCheck.pair (QCheck.int_bound 40) arb_u256)
      (fun (i, v) ->
        U256.equal (eval_binop Opcode.BYTE (U256.of_int i) v) (U256.byte_at v i));
    QCheck.Test.make ~name:"EVM SIGNEXTEND == U256.sign_extend" ~count:60
      (QCheck.pair (QCheck.int_bound 35) arb_u256)
      (fun (k, v) ->
        U256.equal
          (eval_binop Opcode.SIGNEXTEND (U256.of_int k) v)
          (U256.sign_extend v k));
  ]

let unop_tests =
  [
    QCheck.Test.make ~name:"EVM NOT == U256.lognot" ~count:60 arb_u256
      (fun v ->
        U256.equal (eval_program [ Asm.Push_u256 v; Asm.Op Opcode.NOT ]) (U256.lognot v));
    QCheck.Test.make ~name:"EVM ISZERO" ~count:60 arb_u256 (fun v ->
        U256.equal
          (eval_program [ Asm.Push_u256 v; Asm.Op Opcode.ISZERO ])
          (bool_word (U256.is_zero v)));
  ]

(* ------------------------------------------------------------------ *)
(* Edge-case semantics                                                 *)
(* ------------------------------------------------------------------ *)

let alice = Address.of_hex "0x00000000000000000000000000000000000a11ce"
let contract_a = Address.of_hex "0x0000000000000000000000000000000000000c0a"
let contract_b = Address.of_hex "0x0000000000000000000000000000000000000c0b"

(* CALLCODE runs callee code in CALLER's storage, but msg.sender becomes
   the calling contract (unlike DELEGATECALL). *)
let test_callcode_semantics () =
  let host = Host.in_memory () in
  (* B stores CALLER at slot 0. *)
  let b_code =
    Asm.assemble
      [ Asm.Op Opcode.CALLER; Asm.Push_int 0; Asm.Op Opcode.SSTORE; Asm.Op Opcode.STOP ]
  in
  let a_code =
    Asm.assemble
      [
        (* callcode(gas, b, 0, 0, 0, 0, 0) *)
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_u256 (Address.to_u256 contract_b);
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.CALLCODE;
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a a_code;
  Host.with_code host contract_b b_code;
  let r =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_b "success" true (Interp.succeeded r);
  (* Storage context is A (like delegatecall)... *)
  check_u "write lands in A's storage" (Address.to_u256 contract_a)
    (host.Host.get_storage contract_a U256.zero);
  (* ...but CALLER seen by B's code is A itself (unlike delegatecall). *)
  check_u "B untouched" U256.zero (host.Host.get_storage contract_b U256.zero)

let test_call_depth_limit () =
  let host = Host.in_memory () in
  (* A contract that calls itself until the depth limit. *)
  let code =
    Asm.assemble
      [
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.ADDRESS;
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.CALL;
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a code;
  let r =
    Interp.execute ~step_limit:50_000_000 host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:""
         ~gas:1_000_000_000 ())
  in
  (* The 63/64 gas rule plus the depth cap must terminate this; the outer
     call itself still succeeds. *)
  check_b "terminates successfully" true (Interp.succeeded r)

let test_returndatacopy_out_of_bounds () =
  let host = Host.in_memory () in
  (* No call made: returndata is empty; copying 1 byte must abort. *)
  let code =
    Asm.assemble
      [
        Asm.Push_int 1;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURNDATACOPY;
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a code;
  let r = Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ()) in
  check_b "aborts" true
    (match r.Interp.status with
    | Interp.Failed Interp.Return_data_out_of_bounds -> true
    | _ -> false)

let test_create_collision () =
  let host = Host.in_memory () in
  host.Host.set_balance alice (U256.of_int 1_000_000);
  let init = Asm.assemble [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Opcode.RETURN ] in
  let r1 = Interp.create host ~caller:alice ~value:U256.zero ~init_code:init ~gas:1_000_000 in
  check_b "first create ok" true (Interp.succeeded r1);
  (* Force the same nonce: reset it so the derived address repeats. *)
  host.Host.set_nonce alice 0;
  let r2 = Interp.create host ~caller:alice ~value:U256.zero ~init_code:init ~gas:1_000_000 in
  check_b "collision rejected" true
    (match r2.Interp.status with
    | Interp.Failed (Interp.Create_collision _) -> true
    | _ -> false)

let test_revert_in_init_code () =
  let host = Host.in_memory () in
  let init = Asm.assemble [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Opcode.REVERT ] in
  let r = Interp.create host ~caller:alice ~value:U256.zero ~init_code:init ~gas:1_000_000 in
  check_b "reverted creation" true (r.Interp.status = Interp.Reverted);
  check_b "no address" true (r.Interp.created = None)

let test_code_size_limit () =
  let host = Host.in_memory () in
  (* Init code returning > 24576 bytes of runtime. *)
  let too_big = Gas.max_code_size + 1 in
  let init =
    Asm.assemble
      [ Asm.Push_int too_big; Asm.Push_int 0; Asm.Op Opcode.RETURN ]
  in
  let r = Interp.create host ~caller:alice ~value:U256.zero ~init_code:init ~gas:100_000_000 in
  check_b "oversized code rejected" true
    (match r.Interp.status with
    | Interp.Failed (Interp.Code_too_large _) -> true
    | _ -> false)

let test_gas_decreases () =
  let host = Host.in_memory () in
  let code =
    Asm.assemble
      [
        Asm.Op Opcode.GAS;
        Asm.Push_int 0;
        Asm.Op Opcode.MSTORE;
        Asm.Op Opcode.GAS;
        Asm.Push_int 32;
        Asm.Op Opcode.MSTORE;
        Asm.Push_int 64;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ]
  in
  Host.with_code host contract_a code;
  let r = Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ()) in
  let g1 = Abi.decode_uint r.Interp.return_data in
  let g2 = U256.of_bytes_be (Hexutil.slice r.Interp.return_data 32 32) in
  check_b "gas monotonically decreases" true (U256.lt g2 g1);
  check_b "gas used positive" true (r.Interp.gas_used > 0)

let test_memory_expansion_charged () =
  let host = Host.in_memory () in
  (* Touch a high memory offset: must cost far more than base. *)
  let code offset =
    Asm.assemble
      [ Asm.Push_int 1; Asm.Push_int offset; Asm.Op Opcode.MSTORE; Asm.Op Opcode.STOP ]
  in
  Host.with_code host contract_a (code 0);
  let r_small =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  Host.with_code host contract_b (code 100_000);
  let r_large =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_b ~input:"" ())
  in
  check_b "both succeed" true (Interp.succeeded r_small && Interp.succeeded r_large);
  check_b "expansion costs gas" true
    (r_large.Interp.gas_used > r_small.Interp.gas_used + 1000)

let test_selfdestruct () =
  let host = Host.in_memory () in
  host.Host.set_balance contract_a (U256.of_int 777);
  let code =
    Asm.assemble
      [ Asm.Push_u256 (Address.to_u256 alice); Asm.Op Opcode.SELFDESTRUCT ]
  in
  Host.with_code host contract_a code;
  let r = Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ()) in
  check_b "success" true (Interp.succeeded r);
  check_u "balance swept" (U256.of_int 777) (host.Host.get_balance alice);
  check_b "code gone" true (host.Host.get_code contract_a = "")

(* Trace capture on a proxy forward. *)
let test_trace_tree () =
  let host = Host.in_memory () in
  let logic = Asm.assemble [ Asm.Op Opcode.STOP ] in
  Host.with_code host contract_b logic;
  let proxy =
    Asm.assemble
      [
        Asm.Op Opcode.CALLDATASIZE;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.CALLDATACOPY;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.CALLDATASIZE;
        Asm.Push_int 0;
        Asm.Push_int 1;
        Asm.Op Opcode.SLOAD;
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.DELEGATECALL;
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a proxy;
  host.Host.set_storage contract_a U256.one (Address.to_u256 contract_b);
  let input = Hexutil.of_hex "0xdeadbeef" in
  let result, tree = Trace.run host ~caller:alice ~target:contract_a ~input in
  check_b "executed" true (Interp.succeeded result);
  check_b "root is TX" true (tree.Trace.t_kind = "TX");
  Alcotest.(check int) "one child call" 1 (List.length tree.Trace.t_children);
  (match tree.Trace.t_children with
  | [ child ] ->
      check_b "delegatecall child" true (child.Trace.t_kind = "DELEGATECALL");
      check_b "child code is logic" true (Address.equal child.Trace.t_code contract_b);
      check_b "child status" true (child.Trace.t_status = "returned")
  | _ -> ());
  check_b "root recorded the sload" true (List.length tree.Trace.t_sloads = 1);
  check_b "rendering non-empty" true (String.length (Trace.to_string tree) > 50)

let suite =
  List.map QCheck_alcotest.to_alcotest
    (differential_binop_tests @ differential_ternop_tests @ shift_tests @ unop_tests)
  @ [
      Alcotest.test_case "callcode semantics" `Quick test_callcode_semantics;
      Alcotest.test_case "call depth limit" `Quick test_call_depth_limit;
      Alcotest.test_case "returndatacopy OOB" `Quick test_returndatacopy_out_of_bounds;
      Alcotest.test_case "create collision" `Quick test_create_collision;
      Alcotest.test_case "revert in init" `Quick test_revert_in_init_code;
      Alcotest.test_case "code size limit" `Quick test_code_size_limit;
      Alcotest.test_case "gas decreases" `Quick test_gas_decreases;
      Alcotest.test_case "memory expansion gas" `Quick test_memory_expansion_charged;
      Alcotest.test_case "selfdestruct" `Quick test_selfdestruct;
      Alcotest.test_case "trace tree" `Quick test_trace_tree;
    ]
