module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen
module Ast = Minisol.Ast

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"

let deploy chain ast =
  match Chain.deploy chain ~from:alice ~init_code:(Codegen.init_code ast) () with
  | Ok a -> a
  | Error e -> Alcotest.failf "deploy failed: %s" e

(* ------------------------------------------------------------------ *)
(* Etherscan heuristic                                                 *)
(* ------------------------------------------------------------------ *)

let test_etherscan () =
  check_b "proxy bytecode flagged" true
    (Baselines.Etherscan_like.is_proxy
       (Codegen.runtime (Patterns.slot_var_proxy ())));
  check_b "counter not flagged" false
    (Baselines.Etherscan_like.is_proxy (Codegen.runtime (Patterns.counter_logic ())));
  (* Its known false positive: library callers. *)
  check_b "library caller falsely flagged" true
    (Baselines.Etherscan_like.is_proxy
       (Codegen.runtime
          (Patterns.library_caller
             ~lib:(Evm.Address.of_hex "0x00000000000000000000000000000000000005af"))))

(* ------------------------------------------------------------------ *)
(* USCHunt                                                             *)
(* ------------------------------------------------------------------ *)

let test_uschunt_proxy_detection () =
  check_b "slot proxy" true (Baselines.Uschunt_like.detect_proxy (Patterns.slot_var_proxy ()));
  check_b "counter" false (Baselines.Uschunt_like.detect_proxy (Patterns.counter_logic ()));
  (* Keyword FP: the library caller uses delegatecall in a function body. *)
  check_b "library caller flagged by keyword" true
    (Baselines.Uschunt_like.detect_proxy
       (Patterns.library_caller
          ~lib:(Evm.Address.of_hex "0x00000000000000000000000000000000000005af")))

let test_uschunt_compile_failures_deterministic () =
  (* Roughly the configured rate, and stable per address. *)
  let failures = ref 0 in
  let total = 2000 in
  for i = 0 to total - 1 do
    let addr =
      Evm.Address.of_u256 (U256.of_bytes_be (Keccak.digest (string_of_int i)))
    in
    match Baselines.Uschunt_like.analyze ~address:addr (Patterns.counter_logic ()) with
    | Baselines.Uschunt_like.Compile_error -> incr failures
    | Baselines.Uschunt_like.Analyzed _ -> ()
  done;
  let rate = float_of_int !failures /. float_of_int total in
  check_b (Printf.sprintf "failure rate %.2f near 0.30" rate) true
    (rate > 0.25 && rate < 0.35);
  (* Determinism. *)
  let addr = Evm.Address.of_hex "0x00000000000000000000000000000000000000aa" in
  check_b "same address same outcome" true
    (Baselines.Uschunt_like.analyze ~address:addr (Patterns.counter_logic ())
    = Baselines.Uschunt_like.analyze ~address:addr (Patterns.counter_logic ()))

let test_uschunt_padding_false_positive () =
  (* The 6.3 FP mode: same-type different-name padding flagged. *)
  let flags =
    Baselines.Uschunt_like.storage_collisions
      ~proxy:(Patterns.padding_proxy ())
      ~logic:(Patterns.padding_logic ())
  in
  check_b "padding pair flagged (USCHunt FP)" true (flags <> []);
  check_b "reason is name mismatch" true
    (List.exists (fun f -> f.Baselines.Uschunt_like.sf_reason = `Name_mismatch) flags);
  (* ProxioN's usage-aware detector stays clean on the same pair. *)
  check_b "proxion clean" false
    (Proxion.Storage_collision.has_collision
       ~proxy:(Proxion.Storage_collision.Source (Patterns.padding_proxy ()))
       ~logic:(Proxion.Storage_collision.Source (Patterns.padding_logic ())))

let test_uschunt_func_collisions () =
  check_i "honeypot collision found" 1
    (List.length
       (Baselines.Uschunt_like.func_collisions
          ~proxy:(Patterns.honeypot_proxy ())
          ~logic:(Patterns.honeypot_logic ())))

(* ------------------------------------------------------------------ *)
(* CRUSH                                                               *)
(* ------------------------------------------------------------------ *)

let test_crush_requires_history () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain (Patterns.slot_var_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  (* No transactions yet: invisible to CRUSH. *)
  check_b "hidden proxy missed" false (Baselines.Crush_like.is_proxy chain proxy);
  (* After one forwarding transaction it becomes visible. *)
  let input = Hexutil.take 36 (Keccak.digest "crush-probe" ^ String.make 32 '\000') in
  ignore (Chain.call chain ~from:alice ~to_:proxy ~input ());
  check_b "visible after tx" true (Baselines.Crush_like.is_proxy chain proxy);
  check_b "pair recorded" true
    (List.exists
       (fun (p, l) -> Evm.Address.equal p proxy && Evm.Address.equal l logic)
       (Baselines.Crush_like.proxy_pairs chain))

let test_crush_library_false_positive () =
  let chain = Chain.create () in
  let lib = deploy chain (Patterns.counter_logic ()) in
  let user = deploy chain (Patterns.library_caller ~lib) in
  let input =
    Evm.Abi.encode_call ~signature:"addChecked(uint256,uint256)"
      [ Evm.Abi.Uint U256.one; Evm.Abi.Uint U256.one ]
  in
  ignore (Chain.call chain ~from:alice ~to_:user ~input ());
  (* CRUSH counts the library caller as a proxy; ProxioN does not. *)
  check_b "crush flags library caller" true (Baselines.Crush_like.is_proxy chain user);
  let host = Chain.host_at_head chain in
  check_b "proxion excludes it" false
    (Proxion.Proxy_detect.is_proxy (Proxion.Proxy_detect.detect ~host user))

(* ------------------------------------------------------------------ *)
(* Salehi                                                              *)
(* ------------------------------------------------------------------ *)

let test_salehi_replay () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain (Patterns.slot_var_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  check_b "no txs, no detection" false (Baselines.Salehi_like.is_proxy chain proxy);
  let input = Hexutil.take 36 (Keccak.digest "salehi" ^ String.make 32 '\000') in
  ignore (Chain.call chain ~from:alice ~to_:proxy ~input ());
  check_b "detected after replayable tx" true (Baselines.Salehi_like.is_proxy chain proxy);
  (* A plain contract with txs is not flagged. *)
  let counter = deploy chain (Patterns.counter_logic ()) in
  ignore
    (Chain.call chain ~from:alice ~to_:counter
       ~input:(Evm.Abi.encode_call ~signature:"increment()" [])
       ());
  check_b "plain contract not flagged" false
    (Baselines.Salehi_like.is_proxy chain counter)

let suite =
  [
    Alcotest.test_case "etherscan heuristic" `Quick test_etherscan;
    Alcotest.test_case "uschunt proxy detection" `Quick test_uschunt_proxy_detection;
    Alcotest.test_case "uschunt compile failures" `Quick
      test_uschunt_compile_failures_deterministic;
    Alcotest.test_case "uschunt padding FP" `Quick test_uschunt_padding_false_positive;
    Alcotest.test_case "uschunt func collisions" `Quick test_uschunt_func_collisions;
    Alcotest.test_case "crush history gating" `Quick test_crush_requires_history;
    Alcotest.test_case "crush library FP" `Quick test_crush_library_false_positive;
    Alcotest.test_case "salehi replay" `Quick test_salehi_replay;
  ]
