let check_b = Alcotest.(check bool)

(* Table 1: the coverage matrix must reproduce the paper's qualitative
   shape — measured, not asserted by fiat. *)
let test_table1_shape () =
  let rows = Experiments.Table1.run () in
  let find tool =
    List.find (fun r -> r.Experiments.Table1.tool = tool) rows
  in
  let covered = Experiments.Table1.Covered in
  let proxion = find "ProxioN (this work)" in
  Array.iter
    (fun c -> check_b "proxion covers all contract classes" true (c = covered))
    proxion.Experiments.Table1.contract_coverage;
  Array.iter
    (fun c -> check_b "proxion covers all collision classes" true (c = covered))
    proxion.Experiments.Table1.collision_coverage;
  let uschunt = find "Slither/USCHunt" in
  check_b "uschunt misses hidden" true
    (uschunt.Experiments.Table1.contract_coverage.(3) <> covered);
  check_b "uschunt misses bytecode collisions" true
    (uschunt.Experiments.Table1.collision_coverage.(2) <> covered);
  let crush = find "CRUSH" in
  check_b "crush covers tx quadrant" true
    (crush.Experiments.Table1.contract_coverage.(2) = covered);
  check_b "crush misses hidden" true
    (crush.Experiments.Table1.contract_coverage.(3) <> covered);
  check_b "crush has no function collisions" true
    (crush.Experiments.Table1.collision_coverage.(0) <> covered);
  let etherscan = find "EtherScan" in
  Array.iter
    (fun c -> check_b "etherscan detects no collisions" true (c <> covered))
    etherscan.Experiments.Table1.collision_coverage

(* Table 2: the orderings the paper reports must hold. *)
let test_table2_orderings () =
  let rows = Experiments.Table2.run () in
  let acc tool kind =
    let r =
      List.find
        (fun r -> r.Experiments.Table2.tool = tool && r.Experiments.Table2.kind = kind)
        rows
    in
    Experiments.Table2.accuracy r.Experiments.Table2.matrix
  in
  let p_st = acc "ProxioN" "storage" in
  let u_st = acc "USCHunt" "storage" in
  let c_st = acc "CRUSH" "storage" in
  check_b
    (Printf.sprintf "storage: proxion %.2f > uschunt %.2f" p_st u_st)
    true (p_st > u_st);
  check_b
    (Printf.sprintf "storage: proxion %.2f > crush %.2f" p_st c_st)
    true (p_st > c_st);
  let p_fn = acc "ProxioN" "function" in
  let u_fn = acc "USCHunt" "function" in
  check_b
    (Printf.sprintf "function: proxion %.2f >> uschunt %.2f" p_fn u_fn)
    true
    (p_fn > 0.9 && u_fn < 0.75);
  (* ProxioN's function false negatives stem from the hostile-bytecode
     pairs — at most the three the corpus injects. *)
  let proxion_fn =
    (List.find
       (fun r ->
         r.Experiments.Table2.tool = "ProxioN"
         && r.Experiments.Table2.kind = "function")
       rows)
      .Experiments.Table2.matrix
      .Experiments.Table2.fn
  in
  check_b "at most 3 proxion function misses" true (proxion_fn <= 3)

(* Effectiveness: ProxioN finds strictly more than both baselines. *)
let small = { Dataset.Generate.quick_config with Dataset.Generate.total = 600 }

let test_effectiveness_sanctuary () =
  let s = Experiments.Effectiveness.run_sanctuary ~config:small () in
  check_b "uschunt loses contracts to compile errors" true
    (s.Experiments.Effectiveness.sa_uschunt_failures > 0);
  check_b "proxion finds more proxies" true
    (s.Experiments.Effectiveness.sa_proxion_proxies
    > s.Experiments.Effectiveness.sa_uschunt_proxies);
  check_b "proxion-only collisions exist" true
    (s.Experiments.Effectiveness.sa_collisions_proxion_only >= 0)

let test_effectiveness_crush () =
  let c = Experiments.Effectiveness.run_crush ~config:small () in
  check_b "proxion finds more proxies than crush" true
    (c.Experiments.Effectiveness.cr_proxion_proxies
    > c.Experiments.Effectiveness.cr_crush_proxies);
  check_b "hidden proxies found only by proxion" true
    (c.Experiments.Effectiveness.cr_proxion_only > 0);
  check_b "proxion reports at least as many storage pairs" true
    (c.Experiments.Effectiveness.cr_proxion_storage_pairs
    >= c.Experiments.Effectiveness.cr_crush_storage_pairs)

(* Landscape rendering smoke: all figures render non-empty. *)
let test_landscape_renders () =
  let t =
    Experiments.Landscape.prepare
      ~config:{ Dataset.Generate.quick_config with Dataset.Generate.total = 500 }
      ()
  in
  List.iter
    (fun (name, s) -> check_b (name ^ " non-empty") true (String.length s > 40))
    [
      ("fig2", Experiments.Landscape.fig2 t);
      ("fig4", Experiments.Landscape.fig4 t);
      ("table3", Experiments.Landscape.table3 t);
      ("fig5", Experiments.Landscape.fig5 t);
      ("table4", Experiments.Landscape.table4 t);
      ("fig6", Experiments.Landscape.fig6 t);
      ("summary", Experiments.Landscape.summary t);
    ]

let test_json_emitter () =
  let open Report.Json in
  check_b "scalar" true (to_string ~pretty:false (Int 42) = "42");
  check_b "escaping" true
    (to_string ~pretty:false (String "a\"b\\c\nd") = "\"a\\\"b\\\\c\\nd\"");
  let v = Obj [ ("xs", List [ Int 1; Bool true; Null ]); ("s", String "hi") ] in
  let s = to_string ~pretty:false v in
  check_b "object rendering" true
    (s = "{\"xs\": [1,true,null],\"s\": \"hi\"}"
    || String.length s > 10 (* formatting detail; must at least serialize *));
  (* Experiment JSON payloads serialize non-trivially. *)
  let row =
    {
      Experiments.Table2.tool = "ProxioN";
      kind = "storage";
      matrix = { Experiments.Table2.tp = 1; fp = 2; tn = 3; fn = 4 };
    }
  in
  check_b "table2 json" true
    (String.length (to_string (Experiments.Table2.to_json [ row ])) > 60)

let test_multichain_survey () =
  let rows = Experiments.Multichain.run ~base_total:400 () in
  check_b "eight chains" true (List.length rows = 8);
  List.iter
    (fun r ->
      check_b (r.Experiments.Multichain.mc_name ^ " has contracts") true
        (r.Experiments.Multichain.mc_contracts > 100);
      check_b
        (r.Experiments.Multichain.mc_name ^ " proxy share plausible")
        true
        (r.Experiments.Multichain.mc_proxy_share > 0.3
        && r.Experiments.Multichain.mc_proxy_share < 0.75))
    rows;
  (* Chains are independent populations: shares differ across chains. *)
  let shares =
    List.sort_uniq compare
      (List.map (fun r -> r.Experiments.Multichain.mc_proxies) rows)
  in
  check_b "chains differ" true (List.length shares > 1)

let suite =
  [
    Alcotest.test_case "json emitter" `Quick test_json_emitter;
    Alcotest.test_case "multichain survey" `Slow test_multichain_survey;
    Alcotest.test_case "table1 shape" `Slow test_table1_shape;
    Alcotest.test_case "table2 orderings" `Slow test_table2_orderings;
    Alcotest.test_case "effectiveness sanctuary" `Slow test_effectiveness_sanctuary;
    Alcotest.test_case "effectiveness crush" `Slow test_effectiveness_crush;
    Alcotest.test_case "landscape renders" `Slow test_landscape_renders;
  ]
