let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let h = U256.of_hex
let i = U256.of_int

let test_conversions () =
  check_u "of_int 0" U256.zero (i 0);
  check_u "of_int 1" U256.one (i 1);
  check_s "to_hex zero" "0x0" (U256.to_hex U256.zero);
  check_s "to_hex" "0xdeadbeef" (U256.to_hex (h "0xdeadbeef"));
  check_s "to_hex_padded" ("0x" ^ String.make 56 '0' ^ "deadbeef")
    (U256.to_hex_padded (h "0xdeadbeef"));
  check_s "decimal round" "123456789012345678901234567890"
    (U256.to_decimal (U256.of_decimal "123456789012345678901234567890"));
  check_u "of_string hex" (i 255) (U256.of_string "0xff");
  check_u "of_string dec" (i 255) (U256.of_string "255");
  check_u "odd hex" (i 0xabc) (h "0xabc");
  Alcotest.(check (option int)) "to_int" (Some 42) (U256.to_int (i 42));
  Alcotest.(check (option int)) "to_int too big" None
    (U256.to_int (h "0x10000000000000000"));
  check_u "of_int64 unsigned" (h "0xffffffffffffffff") (U256.of_int64 (-1L))

let test_decimal_edges () =
  check_u "underscores allowed" (i 1000000) (U256.of_decimal "1_000_000");
  check_b "empty rejected" true
    (match U256.of_decimal "" with exception Invalid_argument _ -> true | _ -> false);
  check_b "junk rejected" true
    (match U256.of_decimal "12a" with exception Invalid_argument _ -> true | _ -> false);
  check_s "max value decimal"
    "115792089237316195423570985008687907853269984665640564039457584007913129639935"
    (U256.to_decimal U256.max_value)

let test_bytes_be () =
  check_s "32 bytes" (String.make 31 '\000' ^ "\x2a") (U256.to_bytes_be (i 42));
  check_u "round trip" (h "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
    (U256.of_bytes_be (U256.to_bytes_be (h "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")));
  check_u "short input left-padded" (i 0xff) (U256.of_bytes_be "\xff")

let test_add_sub () =
  check_u "simple" (i 5) (U256.add (i 2) (i 3));
  check_u "wrap" U256.zero (U256.add U256.max_value U256.one);
  check_u "wrap 2" (i 1) (U256.add U256.max_value (i 2));
  check_u "sub" (i 1) (U256.sub (i 3) (i 2));
  check_u "sub wrap" U256.max_value (U256.sub U256.zero U256.one);
  check_u "carry chain"
    (h "0x10000000000000000")
    (U256.add (h "0xffffffffffffffff") U256.one)

let test_mul () =
  check_u "simple" (i 6) (U256.mul (i 2) (i 3));
  check_u "big"
    (h "0xfffffffffffffffffffffffffffffffe00000000000000000000000000000001")
    (U256.mul (h "0xffffffffffffffffffffffffffffffff") (h "0xffffffffffffffffffffffffffffffff"));
  check_u "wrap to zero" U256.zero
    (U256.mul (h "0x100000000000000000000000000000000") (h "0x100000000000000000000000000000000"));
  check_u "max*max" U256.one (U256.mul U256.max_value U256.max_value)

let test_div () =
  check_u "simple" (i 3) (U256.div (i 7) (i 2));
  check_u "rem" (i 1) (U256.rem (i 7) (i 2));
  check_u "div by zero" U256.zero (U256.div (i 7) U256.zero);
  check_u "rem by zero" U256.zero (U256.rem (i 7) U256.zero);
  check_u "big divide" (h "0xffffffffffffffff")
    (U256.div (h "0xfffffffffffffffe0000000000000001") (h "0xffffffffffffffff"));
  let q, r = U256.divmod (h "0x123456789abcdef0123456789abcdef") (i 1000) in
  check_u "q*b+r" (h "0x123456789abcdef0123456789abcdef")
    (U256.add (U256.mul q (i 1000)) r)

let test_signed () =
  let minus_one = U256.neg U256.one in
  let minus_two = U256.neg (i 2) in
  check_u "sdiv -7/2" (U256.neg (i 3)) (U256.sdiv (U256.neg (i 7)) (i 2));
  check_u "sdiv 7/-2" (U256.neg (i 3)) (U256.sdiv (i 7) minus_two);
  check_u "sdiv -7/-2" (i 3) (U256.sdiv (U256.neg (i 7)) minus_two);
  check_u "smod -7%2 keeps dividend sign" minus_one (U256.smod (U256.neg (i 7)) (i 2));
  check_u "smod 7%-2" U256.one (U256.smod (i 7) minus_two);
  check_b "slt neg < pos" true (U256.slt minus_one U256.one);
  check_b "slt pos < neg is false" false (U256.slt U256.one minus_one);
  check_b "slt both neg" true (U256.slt minus_two minus_one);
  check_b "sgt" true (U256.sgt U256.one minus_one);
  check_u "sdiv by zero" U256.zero (U256.sdiv minus_one U256.zero)

let test_modular () =
  check_u "addmod" (i 4) (U256.addmod (i 10) (i 10) (i 8));
  check_u "addmod overflow" (i 2)
    (U256.addmod U256.max_value (i 2) U256.max_value);
  check_u "mulmod" (i 4) (U256.mulmod (i 10) (i 10) (i 8));
  check_u "mulmod wide" (i 9)
    (U256.mulmod U256.max_value U256.max_value (i 12));
  check_u "addmod zero mod" U256.zero (U256.addmod (i 1) (i 1) U256.zero);
  check_u "mulmod zero mod" U256.zero (U256.mulmod (i 2) (i 2) U256.zero)

let test_exp () =
  check_u "2^10" (i 1024) (U256.exp (i 2) (i 10));
  check_u "x^0" U256.one (U256.exp (i 12345) U256.zero);
  check_u "0^0" U256.one (U256.exp U256.zero U256.zero);
  check_u "2^256 wraps" U256.zero (U256.exp (i 2) (i 256));
  check_u "2^255" (h "0x8000000000000000000000000000000000000000000000000000000000000000")
    (U256.exp (i 2) (i 255))

let test_bitwise () =
  check_u "and" (i 0b1000) (U256.logand (i 0b1100) (i 0b1010));
  check_u "or" (i 0b1110) (U256.logor (i 0b1100) (i 0b1010));
  check_u "xor" (i 0b0110) (U256.logxor (i 0b1100) (i 0b1010));
  check_u "not zero" U256.max_value (U256.lognot U256.zero);
  check_u "shl" (i 8) (U256.shift_left U256.one 3);
  check_u "shl out" U256.zero (U256.shift_left U256.one 256);
  check_u "shr" U256.one (U256.shift_right (i 8) 3);
  check_u "shr out" U256.zero (U256.shift_right U256.max_value 256);
  check_u "shl across limbs" (h "0x100000000") (U256.shift_left U256.one 32);
  check_u "shr across limbs" U256.one (U256.shift_right (h "0x100000000") 32);
  check_u "shl 255" (h "0x8000000000000000000000000000000000000000000000000000000000000000")
    (U256.shift_left U256.one 255)

let test_sar () =
  let top_set = U256.shift_left U256.one 255 in
  check_u "sar positive" U256.one (U256.shift_right_arith (i 8) 3);
  check_u "sar negative fills" (h "0xc000000000000000000000000000000000000000000000000000000000000000")
    (U256.shift_right_arith top_set 1);
  check_u "sar neg >=256" U256.max_value (U256.shift_right_arith top_set 256);
  check_u "sar -8 by 1 = -4" (U256.neg (i 4)) (U256.shift_right_arith (U256.neg (i 8)) 1)

let test_byte_sign () =
  let v = h "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20" in
  check_u "byte 0 = msb" (i 1) (U256.byte_at v 0);
  check_u "byte 31 = lsb" (i 0x20) (U256.byte_at v 31);
  check_u "byte 32 = 0" U256.zero (U256.byte_at v 32);
  check_u "sign_extend byte0 0xff" U256.max_value (U256.sign_extend (i 0xff) 0);
  check_u "sign_extend byte0 0x7f" (i 0x7f) (U256.sign_extend (i 0x7f) 0);
  check_u "sign_extend clears high garbage" (i 0x7f)
    (U256.sign_extend (h "0xff7f") 0);
  check_u "sign_extend identity k>=31" v (U256.sign_extend v 31)

let test_compare () =
  check_b "lt" true (U256.lt (i 1) (i 2));
  check_b "gt" true (U256.gt (i 2) (i 1));
  check_b "leq eq" true (U256.leq (i 2) (i 2));
  check_b "geq" true (U256.geq (i 2) (i 2));
  check_u "min" (i 1) (U256.min (i 1) (i 2));
  check_u "max" (i 2) (U256.max (i 1) (i 2));
  check_b "high limb comparison" true
    (U256.lt (h "0xffffffffffffffff") (h "0x10000000000000000000000000000000000000000000000000"))

let arb_u256 =
  let gen =
    QCheck.Gen.map U256.of_bytes_be
      (QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.return 32))
  in
  QCheck.make ~print:U256.to_hex gen

let prop name f = QCheck.Test.make ~name ~count:300 arb_u256 f
let prop2 name f =
  QCheck.Test.make ~name ~count:300 (QCheck.pair arb_u256 arb_u256) (fun (a, b) -> f a b)

let qsuite =
  [
    prop "add zero identity" (fun a -> U256.equal (U256.add a U256.zero) a);
    prop "sub self is zero" (fun a -> U256.is_zero (U256.sub a a));
    prop "neg involutive" (fun a -> U256.equal (U256.neg (U256.neg a)) a);
    prop "bytes round-trip" (fun a -> U256.equal (U256.of_bytes_be (U256.to_bytes_be a)) a);
    prop "hex round-trip" (fun a -> U256.equal (U256.of_hex (U256.to_hex a)) a);
    prop "decimal round-trip" (fun a ->
        U256.equal (U256.of_decimal (U256.to_decimal a)) a);
    prop "not involutive" (fun a -> U256.equal (U256.lognot (U256.lognot a)) a);
    prop2 "add commutative" (fun a b -> U256.equal (U256.add a b) (U256.add b a));
    prop2 "mul commutative" (fun a b -> U256.equal (U256.mul a b) (U256.mul b a));
    prop2 "add then sub" (fun a b -> U256.equal (U256.sub (U256.add a b) b) a);
    prop2 "divmod identity" (fun a b ->
        U256.is_zero b
        ||
        let q, r = U256.divmod a b in
        U256.equal (U256.add (U256.mul q b) r) a && U256.lt r b);
    prop2 "xor self-inverse" (fun a b -> U256.equal (U256.logxor (U256.logxor a b) b) a);
    prop2 "compare antisymmetric" (fun a b ->
        U256.compare a b = -U256.compare b a);
    prop "shift left then right" (fun a ->
        let masked = U256.shift_right (U256.shift_left a 8) 8 in
        U256.equal masked (U256.logand a (U256.shift_right U256.max_value 8)));
    prop2 "mulmod matches mul for small mod-free case" (fun a b ->
        let small_a = U256.logand a (U256.of_hex "0xffffffffffffffff") in
        let small_b = U256.logand b (U256.of_hex "0xffffffffffffffff") in
        let m = U256.max_value in
        U256.equal (U256.mulmod small_a small_b m) (U256.mul small_a small_b));
  ]

let suite =
  [
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "decimal edges" `Quick test_decimal_edges;
    Alcotest.test_case "bytes_be" `Quick test_bytes_be;
    Alcotest.test_case "add_sub" `Quick test_add_sub;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "div" `Quick test_div;
    Alcotest.test_case "signed" `Quick test_signed;
    Alcotest.test_case "modular" `Quick test_modular;
    Alcotest.test_case "exp" `Quick test_exp;
    Alcotest.test_case "bitwise" `Quick test_bitwise;
    Alcotest.test_case "sar" `Quick test_sar;
    Alcotest.test_case "byte_sign" `Quick test_byte_sign;
    Alcotest.test_case "compare" `Quick test_compare;
  ]
  @ List.map QCheck_alcotest.to_alcotest qsuite
