let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let test_roundtrip () =
  check_s "decode" "\x01\x02\xff" (Hexutil.of_hex "0x0102ff");
  check_s "decode no prefix" "\x01\x02\xff" (Hexutil.of_hex "0102ff");
  check_s "encode" "0x0102ff" (Hexutil.to_hex "\x01\x02\xff");
  check_s "encode bare" "0102ff" (Hexutil.to_hex ~prefix:false "\x01\x02\xff");
  check_s "empty" "" (Hexutil.of_hex "0x");
  check_s "empty enc" "0x" (Hexutil.to_hex "")

let test_uppercase () =
  check_s "uppercase accepted" "\xab\xcd" (Hexutil.of_hex "0xABCD")

let test_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hexutil.of_hex: odd-length hex string")
    (fun () -> ignore (Hexutil.of_hex "0x123"));
  check_b "of_hex_opt none" true (Hexutil.of_hex_opt "0xzz" = None);
  check_b "is_hex yes" true (Hexutil.is_hex "0xdeadbeef");
  check_b "is_hex odd" false (Hexutil.is_hex "abc");
  check_b "is_hex bad char" false (Hexutil.is_hex "0xgg")

let test_padding () =
  check_s "pad_left" "00ab" (Hexutil.pad_left 4 '0' "ab");
  check_s "pad_left noop" "abcdef" (Hexutil.pad_left 3 '0' "abcdef");
  check_s "pad_right" "ab00" (Hexutil.pad_right 4 '0' "ab");
  check_s "take" "ab" (Hexutil.take 2 "abcd");
  check_s "take beyond" "abcd" (Hexutil.take 9 "abcd");
  check_s "drop" "cd" (Hexutil.drop 2 "abcd");
  check_s "drop beyond" "" (Hexutil.drop 9 "abcd")

let test_slice () =
  check_s "inside" "bc" (Hexutil.slice "abcd" 1 2);
  check_s "zero pad past end" "d\000\000" (Hexutil.slice "abcd" 3 3);
  check_s "fully past end" "\000\000" (Hexutil.slice "abcd" 10 2);
  check_s "zero length" "" (Hexutil.slice "abcd" 1 0)

let test_xor () =
  check_s "xor" "\x03\x00" (Hexutil.xor "\x01\x02" "\x02\x02");
  Alcotest.check_raises "mismatch" (Invalid_argument "Hexutil.xor: length mismatch")
    (fun () -> ignore (Hexutil.xor "a" "ab"))

let test_chunks () =
  Alcotest.(check (list string)) "even" [ "ab"; "cd" ] (Hexutil.chunks 2 "abcd");
  Alcotest.(check (list string)) "ragged" [ "abc"; "d" ] (Hexutil.chunks 3 "abcd");
  Alcotest.(check (list string)) "empty" [] (Hexutil.chunks 4 "")

let qcheck_roundtrip =
  QCheck.Test.make ~name:"hex round-trip" ~count:500
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s -> Hexutil.of_hex (Hexutil.to_hex s) = s)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "uppercase" `Quick test_uppercase;
    Alcotest.test_case "invalid" `Quick test_invalid;
    Alcotest.test_case "padding" `Quick test_padding;
    Alcotest.test_case "slice" `Quick test_slice;
    Alcotest.test_case "xor" `Quick test_xor;
    Alcotest.test_case "chunks" `Quick test_chunks;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
