(* Differential testing: the Minisol reference evaluator vs the compiled
   bytecode running on the EVM.

   Random self-contained contracts (packed storage variables, mappings,
   setters/getters, guards, branches) are generated from a seeded PRNG;
   random call sequences run through both paths; outcomes and the full
   storage contents must agree call by call.  This cross-checks the
   compiler's packing/masking codegen, the layout solver, the EVM
   interpreter, and the evaluator against each other. *)

module Ast = Minisol.Ast
module Codegen = Minisol.Codegen
module Evalref = Minisol.Evalref
module Layout = Minisol.Layout
module Prng = Dataset.Prng

let check_b = Alcotest.(check bool)
let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u
let target = Evm.Address.of_hex "0x00000000000000000000000000000000d1ff0001"
let caller = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"

(* --- random contract generation ------------------------------------- *)

let value_types =
  [|
    Ast.T_uint 256; Ast.T_uint 128; Ast.T_uint 64; Ast.T_uint 32; Ast.T_uint 8;
    Ast.T_bool; Ast.T_address; Ast.T_bytes 4; Ast.T_bytes 32;
  |]

let random_contract rng id =
  let n_vars = 2 + Prng.int rng 5 in
  let vars =
    List.init n_vars (fun i ->
        let ty =
          if i = n_vars - 1 && Prng.bool rng 0.4 then
            Ast.T_mapping (Ast.T_address, Ast.T_uint 256)
          else Prng.pick rng value_types
        in
        { Ast.v_name = Printf.sprintf "v%d" i; v_ty = ty })
  in
  let value_vars =
    List.filter
      (fun v -> match v.Ast.v_ty with Ast.T_mapping _ -> false | _ -> true)
      vars
  in
  let mapping_vars =
    List.filter
      (fun v -> match v.Ast.v_ty with Ast.T_mapping _ -> true | _ -> false)
      vars
  in
  let setters =
    List.mapi
      (fun i v ->
        Ast.func
          (Printf.sprintf "set_%s_%d" v.Ast.v_name id)
          ~params:[ { Ast.p_name = "x"; p_ty = Ast.T_uint 256 } ]
          ((if Prng.bool rng 0.3 then
              (* an occasional guard exercising Require *)
              [ Ast.Require (Ast.Bin (Ast.Gt, Ast.Param 0, Ast.Const U256.zero)) ]
            else [])
          @ [ Ast.Store (v.Ast.v_name, Ast.Param 0) ]
          @
          if Prng.bool rng 0.25 && i > 0 then begin
            (* a branch writing a second variable *)
            let other =
              List.nth value_vars (Prng.int rng (List.length value_vars))
            in
            [
              Ast.If
                ( Ast.Bin (Ast.Lt, Ast.Param 0, Ast.Const (U256.of_int 1000)),
                  [ Ast.Store (other.Ast.v_name, Ast.Const (U256.of_int 7)) ],
                  [] );
            ]
          end
          else []))
      value_vars
  in
  let getters =
    List.map
      (fun v ->
        Ast.func
          (Printf.sprintf "get_%s_%d" v.Ast.v_name id)
          ~mutability:Ast.View ~returns:v.Ast.v_ty
          [ Ast.Return_value (Ast.Load v.Ast.v_name) ])
      value_vars
  in
  let map_funcs =
    List.concat_map
      (fun v ->
        [
          Ast.func
            (Printf.sprintf "mput_%s_%d" v.Ast.v_name id)
            ~params:
              [
                { Ast.p_name = "k"; p_ty = Ast.T_address };
                { Ast.p_name = "x"; p_ty = Ast.T_uint 256 };
              ]
            [ Ast.Map_store (v.Ast.v_name, Ast.Param 0, Ast.Param 1) ];
          Ast.func
            (Printf.sprintf "mget_%s_%d" v.Ast.v_name id)
            ~mutability:Ast.View
            ~params:[ { Ast.p_name = "k"; p_ty = Ast.T_address } ]
            ~returns:(Ast.T_uint 256)
            [ Ast.Return_value (Ast.Map_load (v.Ast.v_name, Ast.Param 0)) ];
        ])
      mapping_vars
  in
  (* A bounded loop exercising locals: acc = sum of i for i < (x & 31). *)
  let loop_funcs =
    if Prng.bool rng 0.5 then
      [
        Ast.func
          (Printf.sprintf "loop_%d" id)
          ~params:[ { Ast.p_name = "x"; p_ty = Ast.T_uint 256 } ]
          ~returns:(Ast.T_uint 256)
          [
            Ast.Let ("bound", Ast.Bin (Ast.And, Ast.Param 0, Ast.Const (U256.of_int 31)));
            Ast.Let ("i", Ast.Const U256.zero);
            Ast.Let ("acc", Ast.Const U256.zero);
            Ast.While
              ( Ast.Bin (Ast.Lt, Ast.Local "i", Ast.Local "bound"),
                [
                  Ast.Let ("acc", Ast.Bin (Ast.Add, Ast.Local "acc", Ast.Local "i"));
                  Ast.Let ("i", Ast.Bin (Ast.Add, Ast.Local "i", Ast.Const U256.one));
                ] );
            Ast.Return_value (Ast.Local "acc");
          ];
      ]
    else []
  in
  Ast.contract (Printf.sprintf "Fuzz%d" id) ~vars
    ~funcs:(setters @ getters @ map_funcs @ loop_funcs)

(* --- the differential harness ---------------------------------------- *)

let random_word rng =
  match Prng.int rng 4 with
  | 0 -> U256.of_int (Prng.int rng 1000)
  | 1 -> U256.zero
  | 2 -> U256.max_value
  | _ ->
      U256.of_bytes_be
        (Keccak.digest (Printf.sprintf "w%d" (Prng.int rng 1_000_000)))

let outcome_matches (ref_outcome : Evalref.outcome) (r : Evm.Interp.result) =
  match (ref_outcome, r.Evm.Interp.status) with
  | Evalref.Returned v, Evm.Interp.Returned ->
      U256.equal v (Evm.Abi.decode_uint r.Evm.Interp.return_data)
  | Evalref.Stopped, Evm.Interp.Returned -> r.Evm.Interp.return_data = ""
  | Evalref.Reverted, Evm.Interp.Reverted -> true
  | _ -> false

let run_differential rng id =
  let contract = random_contract rng id in
  let layout = Layout.of_contract contract in
  let host = Evm.Host.in_memory () in
  Evm.Host.with_code host target (Codegen.runtime contract);
  let state = Evalref.create () in
  let used_map_keys = ref [] in
  let n_calls = 12 + Prng.int rng 10 in
  for _ = 1 to n_calls do
    let f =
      List.nth contract.Ast.c_funcs
        (Prng.int rng (List.length contract.Ast.c_funcs))
    in
    let args =
      List.map
        (fun p ->
          match p.Ast.p_ty with
          | Ast.T_address ->
              let k = U256.of_int (1 + Prng.int rng 4) in
              used_map_keys := k :: !used_map_keys;
              k
          | _ -> random_word rng)
        f.Ast.f_params
    in
    let signature = Ast.signature f in
    let ref_outcome = Evalref.call state contract ~signature ~args in
    let input =
      Evm.Abi.encode_call ~signature (List.map (fun a -> Evm.Abi.Uint a) args)
    in
    let evm_result =
      Evm.Interp.execute host (Evm.Interp.make_call ~caller ~target ~input ())
    in
    check_b
      (Printf.sprintf "contract %d: outcome of %s agrees" id signature)
      true
      (outcome_matches ref_outcome evm_result);
    (* Full storage agreement: every layout slot plus every touched
       mapping element. *)
    for slot = 0 to Layout.slot_count layout - 1 do
      check_u
        (Printf.sprintf "contract %d: slot %d after %s" id slot signature)
        (Evalref.get_slot state (U256.of_int slot))
        (host.Evm.Host.get_storage target (U256.of_int slot))
    done;
    List.iter
      (fun (entry : Layout.entry) ->
        match entry.Layout.e_var.Ast.v_ty with
        | Ast.T_mapping _ ->
            List.iter
              (fun key ->
                let slot =
                  U256.of_bytes_be
                    (Keccak.digest
                       (U256.to_bytes_be key
                       ^ U256.to_bytes_be (U256.of_int entry.Layout.e_slot)))
                in
                check_u
                  (Printf.sprintf "contract %d: mapping slot" id)
                  (Evalref.get_slot state slot)
                  (host.Evm.Host.get_storage target slot))
              (List.sort_uniq U256.compare !used_map_keys)
        | _ -> ())
      layout
  done

let test_differential_fuzz () =
  let rng = Prng.create 20260706 in
  for id = 1 to 25 do
    run_differential rng id
  done

(* Loops and locals: sum 1..n computed by compiled code and evaluator. *)
let test_differential_loop () =
  let contract =
    Ast.contract "Looper"
      ~vars:[ { Ast.v_name = "total"; v_ty = Ast.T_uint 256 } ]
      ~funcs:
        [
          Ast.func "sumTo"
            ~params:[ { Ast.p_name = "n"; p_ty = Ast.T_uint 256 } ]
            [
              Ast.Let ("i", Ast.Const U256.zero);
              Ast.Let ("acc", Ast.Const U256.zero);
              Ast.While
                ( Ast.Bin (Ast.Lt, Ast.Local "i", Ast.Param 0),
                  [
                    Ast.Let ("i", Ast.Bin (Ast.Add, Ast.Local "i", Ast.Const U256.one));
                    Ast.Let ("acc", Ast.Bin (Ast.Add, Ast.Local "acc", Ast.Local "i"));
                  ] );
              Ast.Store ("total", Ast.Local "acc");
              Ast.Return_value (Ast.Local "acc");
            ];
        ]
  in
  let host = Evm.Host.in_memory () in
  Evm.Host.with_code host target (Codegen.runtime contract);
  let state = Evalref.create () in
  List.iter
    (fun n ->
      let args = [ U256.of_int n ] in
      let ref_outcome = Evalref.call state contract ~signature:"sumTo(uint256)" ~args in
      let input =
        Evm.Abi.encode_call ~signature:"sumTo(uint256)" [ Evm.Abi.Uint (U256.of_int n) ]
      in
      let r = Evm.Interp.execute host (Evm.Interp.make_call ~caller ~target ~input ()) in
      check_b (Printf.sprintf "sumTo(%d) agrees" n) true (outcome_matches ref_outcome r);
      check_u
        (Printf.sprintf "sumTo(%d) = n(n+1)/2" n)
        (U256.of_int (n * (n + 1) / 2))
        (Evm.Abi.decode_uint r.Evm.Interp.return_data))
    [ 0; 1; 7; 100 ];
  (* Storage agreement after the loop runs. *)
  check_u "total slot agrees"
    (Evalref.get_slot state U256.zero)
    (host.Evm.Host.get_storage target U256.zero)

(* Fixed-contract differential checks on the pattern library's
   self-contained functions. *)
let test_differential_counter () =
  let contract = Minisol.Patterns.counter_logic () in
  let host = Evm.Host.in_memory () in
  Evm.Host.with_code host target (Codegen.runtime contract);
  let state = Evalref.create () in
  let call signature args =
    let ref_outcome = Evalref.call state contract ~signature ~args in
    let input =
      Evm.Abi.encode_call ~signature (List.map (fun a -> Evm.Abi.Uint a) args)
    in
    let r = Evm.Interp.execute host (Evm.Interp.make_call ~caller ~target ~input ()) in
    check_b (signature ^ " agrees") true (outcome_matches ref_outcome r)
  in
  call "increment()" [];
  call "increment()" [];
  call "count()" [];
  call "setCount(uint256)" [ U256.of_int 99 ];
  call "count()" [];
  check_u "final count" (U256.of_int 99)
    (host.Evm.Host.get_storage target U256.zero)

let suite =
  [
    Alcotest.test_case "random contracts (25 x ~17 calls)" `Slow
      test_differential_fuzz;
    Alcotest.test_case "counter fixed sequence" `Quick test_differential_counter;
    Alcotest.test_case "loops and locals" `Quick test_differential_loop;
  ]
