(* Data-driven EVM state tests, in the spirit of ethereum/tests.

   Each vector file under test/vectors/ describes a pre-state, one
   transaction, and expectations on status, return data, deployed code and
   post-state.  The runner builds a fresh in-memory world per vector and
   checks everything the file asserts.  Adding coverage means adding a
   JSON file, not OCaml code. *)

module Json = Report.Json

let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let field obj key =
  match obj with
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let expect_string name = function
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "vector: missing string field %s" name

let as_word = function
  | Json.String s -> U256.of_hex s
  | Json.Int n -> U256.of_int n
  | _ -> Alcotest.fail "vector: expected a hex word"

let load_pre host pre =
  match pre with
  | Json.Obj accounts ->
      List.iter
        (fun (addr_hex, spec) ->
          let addr = Evm.Address.of_hex addr_hex in
          (match field spec "code" with
          | Some (Json.String code_hex) ->
              Evm.Host.with_code host addr (Hexutil.of_hex code_hex)
          | _ -> ());
          (match field spec "balance" with
          | Some v -> host.Evm.Host.set_balance addr (as_word v)
          | None -> ());
          match field spec "storage" with
          | Some (Json.Obj slots) ->
              List.iter
                (fun (slot_hex, value) ->
                  host.Evm.Host.set_storage addr (U256.of_hex slot_hex)
                    (as_word value))
                slots
          | _ -> ())
        accounts
  | _ -> Alcotest.fail "vector: pre must be an object"

let check_post host post =
  match post with
  | Json.Obj accounts ->
      List.iter
        (fun (addr_hex, spec) ->
          let addr = Evm.Address.of_hex addr_hex in
          (match field spec "storage" with
          | Some (Json.Obj slots) ->
              List.iter
                (fun (slot_hex, value) ->
                  Alcotest.check
                    (Alcotest.testable U256.pp U256.equal)
                    (Printf.sprintf "post storage %s[%s]" addr_hex slot_hex)
                    (as_word value)
                    (host.Evm.Host.get_storage addr (U256.of_hex slot_hex)))
                slots
          | _ -> ());
          match field spec "balance" with
          | Some v ->
              Alcotest.check
                (Alcotest.testable U256.pp U256.equal)
                (Printf.sprintf "post balance %s" addr_hex)
                (as_word v)
                (host.Evm.Host.get_balance addr)
          | None -> ())
        accounts
  | _ -> Alcotest.fail "vector: post must be an object"

let run_vector path () =
  let content =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let vector =
    match Json.parse content with
    | Ok v -> v
    | Error e -> Alcotest.failf "vector %s: %s" path e
  in
  let host = Evm.Host.in_memory () in
  (match field vector "pre" with
  | Some pre -> load_pre host pre
  | None -> ());
  let tx = Option.get (field vector "tx") in
  let from = Evm.Address.of_hex (expect_string "from" (field tx "from")) in
  let value = match field tx "value" with Some v -> as_word v | None -> U256.zero in
  let gas =
    match field tx "gas" with Some (Json.Int n) -> n | _ -> 30_000_000
  in
  let input =
    match field tx "input" with
    | Some (Json.String s) -> Hexutil.of_hex s
    | _ -> ""
  in
  let result =
    match (field tx "to", field tx "init") with
    | Some (Json.String to_hex), _ ->
        Evm.Interp.execute host
          (Evm.Interp.make_call ~caller:from
             ~target:(Evm.Address.of_hex to_hex) ~input ~value ~gas ())
    | None, Some (Json.String init_hex) ->
        Evm.Interp.create host ~caller:from ~value
          ~init_code:(Hexutil.of_hex init_hex) ~gas
    | _ -> Alcotest.fail "vector: tx needs either to or init"
  in
  let expect = Option.get (field vector "expect") in
  (match field expect "status" with
  | Some (Json.String expected) ->
      let actual =
        match result.Evm.Interp.status with
        | Evm.Interp.Returned -> "returned"
        | Evm.Interp.Reverted -> "reverted"
        | Evm.Interp.Failed _ -> "failed"
      in
      check_s "status" expected actual
  | _ -> ());
  (match field expect "return_data" with
  | Some (Json.String expected) ->
      check_s "return data" expected (Hexutil.to_hex result.Evm.Interp.return_data)
  | _ -> ());
  (match field expect "created_code" with
  | Some (Json.String expected) -> (
      match result.Evm.Interp.created with
      | Some addr -> check_s "created code" expected (Hexutil.to_hex (host.Evm.Host.get_code addr))
      | None -> Alcotest.fail "expected a created contract")
  | _ -> ());
  (match field expect "post" with
  | Some post -> check_post host post
  | None -> ());
  check_b "consumed vector" true true

let suite =
  let dir = "vectors" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  List.map
    (fun f -> Alcotest.test_case ("vector " ^ f) `Quick (run_vector (Filename.concat dir f)))
    files
