open Evm

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u

(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)
(* ------------------------------------------------------------------ *)

let test_disasm_basic () =
  let code = Hexutil.of_hex "0x6080604052" in
  let instrs = Disasm.disassemble code in
  check_i "count" 3 (List.length instrs);
  match instrs with
  | [ a; b; c ] ->
      check_b "push1 80" true (Opcode.equal a.Disasm.opcode (Opcode.PUSH 1));
      check_s "operand 80" "\x80" a.Disasm.operand;
      check_s "operand 40" "\x40" b.Disasm.operand;
      check_b "mstore" true (Opcode.equal c.Disasm.opcode Opcode.MSTORE);
      check_i "offsets" 4 c.Disasm.offset
  | _ -> Alcotest.fail "expected three instructions"

let test_disasm_truncated_push () =
  (* PUSH4 with only two operand bytes available. *)
  let code = "\x63\xaa\xbb" in
  match Disasm.disassemble code with
  | [ i ] ->
      check_b "push4" true (Opcode.equal i.Disasm.opcode (Opcode.PUSH 4));
      check_s "truncated operand" "\xaa\xbb" i.Disasm.operand
  | _ -> Alcotest.fail "expected a single instruction"

let test_has_opcode () =
  let with_dc = Hexutil.of_hex "0x60005af4" in
  let without = Hexutil.of_hex "0x6000f1" in
  check_b "delegatecall present" true (Disasm.has_opcode with_dc Opcode.DELEGATECALL);
  check_b "delegatecall absent" false (Disasm.has_opcode without Opcode.DELEGATECALL);
  (* DELEGATECALL byte inside a PUSH operand must NOT count. *)
  let hidden = Hexutil.of_hex "0x60f4600052" in
  check_b "byte inside operand ignored" false
    (Disasm.has_opcode hidden Opcode.DELEGATECALL)

let test_jumpdests () =
  let code = Hexutil.of_hex "0x5b60015b" in
  Alcotest.(check (list int)) "dests" [ 0; 3 ] (Disasm.jumpdests code);
  (* A 0x5b inside a PUSH operand is not a JUMPDEST. *)
  let code2 = Hexutil.of_hex "0x605b" in
  Alcotest.(check (list int)) "no dest" [] (Disasm.jumpdests code2)

let test_push_operands () =
  let code = Hexutil.of_hex "0x63deadbeef60aa63cafebabe" in
  Alcotest.(check (list string)) "push4s"
    [ "\xde\xad\xbe\xef"; "\xca\xfe\xba\xbe" ]
    (Disasm.push_operands 4 code);
  Alcotest.(check (list string)) "push1s" [ "\xaa" ] (Disasm.push_operands 1 code)

let test_basic_blocks () =
  let code =
    Asm.assemble
      [
        Asm.Push_int 1;
        Asm.Push_label "dest";
        Asm.Op Opcode.JUMPI;
        Asm.Op Opcode.STOP;
        Asm.Jumpdest "dest";
        Asm.Push_int 0;
        Asm.Op Opcode.STOP;
      ]
  in
  let blocks = Disasm.basic_blocks code in
  check_i "three blocks" 3 (List.length blocks)

let test_cfg_edges () =
  let code =
    Asm.assemble
      [
        Asm.Push_int 1;
        Asm.Push_label "yes";
        Asm.Op Opcode.JUMPI;
        Asm.Push_int 0;
        Asm.Op Opcode.STOP;
        Asm.Jumpdest "yes";
        Asm.Push_label "end";
        Asm.Op Opcode.JUMP;
        Asm.Jumpdest "dead";
        Asm.Op Opcode.STOP;
        Asm.Jumpdest "end";
        Asm.Op Opcode.STOP;
      ]
  in
  let cfg = Cfg.build code in
  check_i "five blocks" 5 (List.length (Cfg.blocks cfg));
  (* Entry block: JUMPI with a resolved target plus fallthrough. *)
  (match Cfg.block_at cfg 0 with
  | Some b ->
      check_i "two successors" 2 (List.length b.Cfg.b_succs);
      check_b "has resolved jump" true
        (List.exists (function Cfg.Jump_to _ -> true | _ -> false) b.Cfg.b_succs)
  | None -> Alcotest.fail "entry block missing");
  (* Reachability from entry skips the dead block. *)
  let reach = Cfg.reachable_from cfg 0 in
  let entries = List.map (fun b -> b.Cfg.b_entry) reach in
  check_i "four reachable blocks" 4 (List.length reach);
  (* the dead block's entry is the JUMPDEST after the JUMP *)
  let dead_entry =
    List.find
      (fun e -> not (List.mem e entries))
      (List.map (fun b -> b.Cfg.b_entry) (Cfg.blocks cfg))
  in
  check_b "dead block excluded" true (dead_entry > 0)

let test_cfg_dynamic_jump_unknown () =
  (* A jump whose target comes off the stack (not an immediate PUSH). *)
  let code =
    Asm.assemble
      [
        Asm.Push_int 5;
        Asm.Op Opcode.CALLDATASIZE;
        Asm.Op Opcode.ADD;
        Asm.Op Opcode.JUMP;
        Asm.Jumpdest "later";
        Asm.Op Opcode.STOP;
      ]
  in
  let cfg = Cfg.build code in
  match Cfg.block_at cfg 0 with
  | Some b ->
      check_b "unknown edge" true (b.Cfg.b_succs = [ Cfg.Unknown ]);
      check_i "conservative reachability" 1 (List.length (Cfg.reachable_from cfg 0))
  | None -> Alcotest.fail "entry block missing"

let test_stack_check () =
  (* The canonical minimal proxy verifies. *)
  let logic = Address.of_hex "0x1234567890123456789012345678901234567890" in
  let eip1167 =
    Hexutil.of_hex "0x363d3d373d3d3d363d73" ^ logic
    ^ Hexutil.of_hex "0x5af43d82803e903d91602b57fd5bf3"
  in
  check_b "eip1167 safe" true (Stack_check.is_safe eip1167);
  (* A program popping an empty stack is flagged with its offset. *)
  let bad = Asm.assemble [ Asm.Push_int 1; Asm.Op Opcode.POP; Asm.Op Opcode.ADD ] in
  (match Stack_check.analyze bad with
  | Stack_check.Underflow { needs; _ } -> check_i "needs two items" 2 needs
  | _ -> Alcotest.fail "expected underflow");
  (* Depth is tracked across resolved jumps. *)
  let ok =
    Asm.assemble
      [
        Asm.Push_int 7;
        Asm.Push_label "use";
        Asm.Op Opcode.JUMP;
        Asm.Jumpdest "use";
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  check_b "value survives the jump" true (Stack_check.is_safe ok);
  let bad_jump =
    Asm.assemble
      [
        Asm.Push_label "use";
        Asm.Op Opcode.JUMP;
        Asm.Jumpdest "use";
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  check_b "underflow past the jump caught" false (Stack_check.is_safe bad_jump)

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

let test_asm_labels () =
  let code =
    Asm.assemble
      [ Asm.Push_label "end"; Asm.Op Opcode.JUMP; Asm.Jumpdest "end"; Asm.Op Opcode.STOP ]
  in
  (* PUSH2 0x0004 JUMP JUMPDEST STOP *)
  check_s "layout" "0x610004565b00" (Hexutil.to_hex code)

let test_asm_errors () =
  check_b "undefined label" true
    (match Asm.assemble [ Asm.Push_label "nope" ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_b "duplicate label" true
    (match Asm.assemble [ Asm.Label "a"; Asm.Label "a" ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_b "raw PUSH op rejected" true
    (match Asm.assemble [ Asm.Op (Opcode.PUSH 1) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_opcode_roundtrip () =
  for b = 0 to 255 do
    check_i
      (Printf.sprintf "byte 0x%02x" b)
      b
      (Opcode.to_byte (Opcode.of_byte b))
  done

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let addr n = Address.of_u256 (U256.of_int n)
let alice = addr 0xa11ce
let contract_a = addr 0xc0a
let contract_b = addr 0xc0b

(* Return the single word computed by [prelude] items. *)
let return_word_program items =
  Asm.assemble
    (items
    @ [
        Asm.Push_int 0;
        Asm.Op Opcode.MSTORE;
        Asm.Push_int 32;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ])

let run_code ?(input = "") ?(value = U256.zero) code =
  let host = Host.in_memory () in
  Host.with_code host contract_a code;
  if not (U256.is_zero value) then
    host.Host.set_balance alice (U256.of_int 1_000_000_000);
  Interp.execute host
    (Interp.make_call ~caller:alice ~target:contract_a ~input ~value ())

let test_arithmetic_program () =
  let r =
    run_code
      (return_word_program
         [ Asm.Push_int 3; Asm.Push_int 2; Asm.Op Opcode.ADD ])
  in
  check_b "success" true (Interp.succeeded r);
  check_u "2+3" (U256.of_int 5) (Abi.decode_uint r.Interp.return_data)

let test_calldata_echo () =
  (* Return the first calldata word. *)
  let r =
    run_code ~input:(U256.to_bytes_be (U256.of_int 777))
      (return_word_program [ Asm.Push_int 0; Asm.Op Opcode.CALLDATALOAD ])
  in
  check_u "echo" (U256.of_int 777) (Abi.decode_uint r.Interp.return_data)

let test_storage_roundtrip () =
  let code =
    Asm.assemble
      [
        (* sstore(7, 42); return sload(7) *)
        Asm.Push_int 42;
        Asm.Push_int 7;
        Asm.Op Opcode.SSTORE;
        Asm.Push_int 7;
        Asm.Op Opcode.SLOAD;
        Asm.Push_int 0;
        Asm.Op Opcode.MSTORE;
        Asm.Push_int 32;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ]
  in
  let r = run_code code in
  check_u "sload" (U256.of_int 42) (Abi.decode_uint r.Interp.return_data)

let test_revert () =
  let code =
    Asm.assemble [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Opcode.REVERT ]
  in
  let r = run_code code in
  check_b "reverted" true (r.Interp.status = Interp.Reverted)

let test_revert_rolls_back_storage () =
  let host = Host.in_memory () in
  (* Contract stores then reverts; storage must stay empty. *)
  let code =
    Asm.assemble
      [
        Asm.Push_int 1;
        Asm.Push_int 0;
        Asm.Op Opcode.SSTORE;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.REVERT;
      ]
  in
  Host.with_code host contract_a code;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_b "reverted" true (r.Interp.status = Interp.Reverted);
  check_u "storage rolled back" U256.zero
    (host.Host.get_storage contract_a U256.zero)

let test_invalid_jump () =
  let code = Asm.assemble [ Asm.Push_int 1; Asm.Op Opcode.JUMP ] in
  let r = run_code code in
  check_b "failed" true
    (match r.Interp.status with
    | Interp.Failed (Interp.Invalid_jump 1) -> true
    | _ -> false)

let test_jumpdest_in_push_rejected () =
  (* PUSH1 0x5b; ...; JUMP to offset 1: the 0x5b is operand data. *)
  let code = Hexutil.of_hex "0x605b600156" in
  let r = run_code code in
  check_b "jump into operand fails" true
    (match r.Interp.status with Interp.Failed (Interp.Invalid_jump _) -> true | _ -> false)

let test_stack_underflow () =
  let code = Asm.assemble [ Asm.Op Opcode.ADD ] in
  let r = run_code code in
  check_b "underflow" true
    (match r.Interp.status with
    | Interp.Failed (Interp.Stack_underflow _) -> true
    | _ -> false)

let test_out_of_gas () =
  let host = Host.in_memory () in
  let code =
    return_word_program [ Asm.Push_int 3; Asm.Push_int 2; Asm.Op Opcode.ADD ]
  in
  Host.with_code host contract_a code;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ~gas:5 ())
  in
  check_b "oog" true
    (match r.Interp.status with Interp.Failed Interp.Out_of_gas -> true | _ -> false)

let test_infinite_loop_hits_step_limit () =
  let code =
    Asm.assemble [ Asm.Jumpdest "top"; Asm.Push_label "top"; Asm.Op Opcode.JUMP ]
  in
  let host = Host.in_memory () in
  Host.with_code host contract_a code;
  let r =
    Interp.execute ~step_limit:1000 host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_b "bounded" true
    (match r.Interp.status with
    | Interp.Failed (Interp.Step_limit_exceeded | Interp.Out_of_gas) -> true
    | _ -> false)

let test_keccak_opcode () =
  (* keccak256 of empty memory range must equal keccak(""). *)
  let r =
    run_code
      (return_word_program
         [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Opcode.KECCAK256 ])
  in
  check_u "keccak(\"\")"
    (U256.of_bytes_be (Keccak.digest ""))
    (Abi.decode_uint r.Interp.return_data)

let test_env_opcodes () =
  let r = run_code (return_word_program [ Asm.Op Opcode.CHAINID ]) in
  check_u "chainid 1" U256.one (Abi.decode_uint r.Interp.return_data);
  let r = run_code (return_word_program [ Asm.Op Opcode.NUMBER ]) in
  check_u "block number"
    (U256.of_int Host.default_block.Host.number)
    (Abi.decode_uint r.Interp.return_data);
  let r = run_code (return_word_program [ Asm.Op Opcode.CALLER ]) in
  check_u "caller" (Address.to_u256 alice) (Abi.decode_uint r.Interp.return_data);
  let r = run_code (return_word_program [ Asm.Op Opcode.ADDRESS ]) in
  check_u "address" (Address.to_u256 contract_a)
    (Abi.decode_uint r.Interp.return_data)

let test_callvalue_and_balance () =
  let r =
    run_code ~value:(U256.of_int 555)
      (return_word_program [ Asm.Op Opcode.CALLVALUE ])
  in
  check_u "callvalue" (U256.of_int 555) (Abi.decode_uint r.Interp.return_data);
  let r =
    run_code ~value:(U256.of_int 700)
      (return_word_program [ Asm.Op Opcode.SELFBALANCE ])
  in
  check_u "selfbalance" (U256.of_int 700) (Abi.decode_uint r.Interp.return_data)

(* Cross-contract CALL: B returns 99; A calls B and returns B's result. *)
let call_and_return_program callee =
  Asm.assemble
    [
      (* call(gas, callee, 0, 0, 0, 0, 32) *)
      Asm.Push_int 32;
      Asm.Push_int 0;
      Asm.Push_int 0;
      Asm.Push_int 0;
      Asm.Push_int 0;
      Asm.Push_u256 (Address.to_u256 callee);
      Asm.Op Opcode.GAS;
      Asm.Op Opcode.CALL;
      Asm.Op Opcode.POP;
      Asm.Push_int 32;
      Asm.Push_int 0;
      Asm.Op Opcode.RETURN;
    ]

let test_call () =
  let host = Host.in_memory () in
  Host.with_code host contract_b (return_word_program [ Asm.Push_int 99 ]);
  Host.with_code host contract_a (call_and_return_program contract_b);
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_b "success" true (Interp.succeeded r);
  check_u "returned 99" (U256.of_int 99) (Abi.decode_uint r.Interp.return_data)

(* DELEGATECALL storage-context semantics: logic writes slot 0; when invoked
   through delegatecall from the proxy, the PROXY's slot 0 changes. *)
let test_delegatecall_context () =
  let host = Host.in_memory () in
  let logic =
    Asm.assemble
      [ Asm.Push_int 1234; Asm.Push_int 0; Asm.Op Opcode.SSTORE; Asm.Op Opcode.STOP ]
  in
  let proxy =
    Asm.assemble
      [
        (* delegatecall(gas, logic, 0, 0, 0, 0) *)
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_u256 (Address.to_u256 contract_b);
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.DELEGATECALL;
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_b logic;
  Host.with_code host contract_a proxy;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_b "success" true (Interp.succeeded r);
  check_u "proxy slot written" (U256.of_int 1234)
    (host.Host.get_storage contract_a U256.zero);
  check_u "logic slot untouched" U256.zero
    (host.Host.get_storage contract_b U256.zero)

(* DELEGATECALL preserves msg.sender: logic returns CALLER; through the
   proxy the caller seen must be alice, not the proxy. *)
let test_delegatecall_sender () =
  let host = Host.in_memory () in
  Host.with_code host contract_b (return_word_program [ Asm.Op Opcode.CALLER ]);
  let proxy =
    Asm.assemble
      [
        Asm.Push_int 32;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_u256 (Address.to_u256 contract_b);
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.DELEGATECALL;
        Asm.Op Opcode.POP;
        Asm.Push_int 32;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ]
  in
  Host.with_code host contract_a proxy;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_u "sender preserved" (Address.to_u256 alice)
    (Abi.decode_uint r.Interp.return_data)

(* The canonical EIP-1167 minimal proxy bytecode must run unmodified. *)
let eip1167_runtime logic =
  Hexutil.of_hex "0x363d3d373d3d3d363d73"
  ^ logic
  ^ Hexutil.of_hex "0x5af43d82803e903d91602b57fd5bf3"

let test_eip1167_canonical () =
  let host = Host.in_memory () in
  (* Logic: returns the first calldata word plus one. *)
  Host.with_code host contract_b
    (return_word_program
       [ Asm.Push_int 0; Asm.Op Opcode.CALLDATALOAD; Asm.Push_int 1; Asm.Op Opcode.ADD ]);
  Host.with_code host contract_a (eip1167_runtime contract_b);
  let input = U256.to_bytes_be (U256.of_int 41) in
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input ())
  in
  check_b "success" true (Interp.succeeded r);
  check_u "forwarded and returned" (U256.of_int 42)
    (Abi.decode_uint r.Interp.return_data);
  (* And reverts propagate. *)
  let reverter =
    Asm.assemble [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Opcode.REVERT ]
  in
  Host.with_code host contract_b reverter;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input ())
  in
  check_b "revert propagates" true (r.Interp.status = Interp.Reverted)

let test_static_call_blocks_writes () =
  let host = Host.in_memory () in
  let writer =
    Asm.assemble
      [ Asm.Push_int 1; Asm.Push_int 0; Asm.Op Opcode.SSTORE; Asm.Op Opcode.STOP ]
  in
  Host.with_code host contract_b writer;
  let static_caller =
    Asm.assemble
      [
        (* staticcall(gas, b, 0, 0, 0, 0); return the success flag *)
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push_u256 (Address.to_u256 contract_b);
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.STATICCALL;
        Asm.Push_int 0;
        Asm.Op Opcode.MSTORE;
        Asm.Push_int 32;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ]
  in
  Host.with_code host contract_a static_caller;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_u "inner call failed" U256.zero (Abi.decode_uint r.Interp.return_data);
  check_u "no write happened" U256.zero (host.Host.get_storage contract_b U256.zero)

let test_create_deploys () =
  let host = Host.in_memory () in
  host.Host.set_balance alice (U256.of_int 1_000_000);
  (* Init code returning a 1-byte runtime (STOP). *)
  let init =
    Asm.assemble
      [
        Asm.Push_int 0x00;
        (* STOP opcode as the runtime, stored via MSTORE8 *)
        Asm.Push_int 0;
        Asm.Op Opcode.MSTORE8;
        Asm.Push_int 1;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ]
  in
  let r =
    Interp.create host ~caller:alice ~value:U256.zero ~init_code:init
      ~gas:1_000_000
  in
  check_b "created" true (Interp.succeeded r);
  match r.Interp.created with
  | None -> Alcotest.fail "no address"
  | Some a ->
      check_s "deployed runtime" "\x00" (host.Host.get_code a);
      check_s "derived address"
        (Hexutil.to_hex (Rlp.contract_address ~sender:alice ~nonce:0))
        (Address.to_hex a)

let test_create2_address () =
  let host = Host.in_memory () in
  host.Host.set_balance contract_a (U256.of_int 1_000_000);
  let runtime_byte = "\x00" in
  let init =
    Asm.assemble
      [
        Asm.Push_int 0x00;
        Asm.Push_int 0;
        Asm.Op Opcode.MSTORE8;
        Asm.Push_int 1;
        Asm.Push_int 0;
        Asm.Op Opcode.RETURN;
      ]
  in
  ignore runtime_byte;
  let salt = U256.of_int 0x1234 in
  let r =
    Interp.create ~salt:(Some salt) host ~caller:contract_a ~value:U256.zero
      ~init_code:init ~gas:1_000_000
  in
  check_b "created" true (Interp.succeeded r);
  match r.Interp.created with
  | None -> Alcotest.fail "no address"
  | Some a ->
      check_s "create2 derivation"
        (Hexutil.to_hex (Rlp.create2_address ~sender:contract_a ~salt ~init_code:init))
        (Address.to_hex a)

let test_value_transfer_via_call () =
  let host = Host.in_memory () in
  host.Host.set_balance alice (U256.of_int 1000);
  Host.with_code host contract_a (Asm.assemble [ Asm.Op Opcode.STOP ]);
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:""
         ~value:(U256.of_int 400) ())
  in
  check_b "success" true (Interp.succeeded r);
  check_u "alice debited" (U256.of_int 600) (host.Host.get_balance alice);
  check_u "contract credited" (U256.of_int 400) (host.Host.get_balance contract_a)

let test_insufficient_balance () =
  let host = Host.in_memory () in
  Host.with_code host contract_a (Asm.assemble [ Asm.Op Opcode.STOP ]);
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:""
         ~value:(U256.of_int 400) ())
  in
  check_b "failed" true
    (r.Interp.status = Interp.Failed Interp.Insufficient_balance)

(* Tracer observations: the delegatecall event carries the forwarded input
   and the SLOAD that produced the target address is visible. *)
let test_tracer_observations () =
  let host = Host.in_memory () in
  let slot = U256.of_int 7 in
  host.Host.set_storage contract_a slot (Address.to_u256 contract_b);
  Host.with_code host contract_b (Asm.assemble [ Asm.Op Opcode.STOP ]);
  let proxy =
    Asm.assemble
      [
        (* delegatecall(gas, sload(7), 0, calldatasize, 0, 0) after copying
           calldata to memory — a storage-slot proxy in miniature. *)
        Asm.Op Opcode.CALLDATASIZE;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.CALLDATACOPY;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op Opcode.CALLDATASIZE;
        Asm.Push_int 0;
        Asm.Push_int 7;
        Asm.Op Opcode.SLOAD;
        Asm.Op Opcode.GAS;
        Asm.Op Opcode.DELEGATECALL;
        Asm.Op Opcode.POP;
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a proxy;
  let calls = ref [] in
  let sloads = ref [] in
  let tracer =
    {
      Interp.no_tracer with
      Interp.on_call = (fun ev -> calls := ev :: !calls);
      Interp.on_sload = (fun a s v -> sloads := (a, s, v) :: !sloads);
    }
  in
  let input = Hexutil.of_hex "0xdeadbeef0011" in
  let r =
    Interp.execute ~tracer host
      (Interp.make_call ~caller:alice ~target:contract_a ~input ())
  in
  check_b "success" true (Interp.succeeded r);
  (match !calls with
  | [ ev ] ->
      check_b "kind" true (ev.Interp.kind = Interp.Delegatecall);
      check_s "input forwarded verbatim" (Hexutil.to_hex input)
        (Hexutil.to_hex ev.Interp.input);
      check_s "code address" (Address.to_hex contract_b)
        (Address.to_hex ev.Interp.code_address);
      check_s "context stays proxy" (Address.to_hex contract_a)
        (Address.to_hex ev.Interp.context_address)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 call event, got %d" (List.length l)));
  match !sloads with
  | [ (a, s, v) ] ->
      check_s "sload addr" (Address.to_hex contract_a) (Address.to_hex a);
      check_u "sload slot" slot s;
      check_u "sload value" (Address.to_u256 contract_b) v
  | l -> Alcotest.fail (Printf.sprintf "expected 1 sload, got %d" (List.length l))

let test_logs () =
  let host = Host.in_memory () in
  let code =
    Asm.assemble
      [
        Asm.Push_int 0xAB;
        (* topic *)
        Asm.Push_int 0;
        (* len *)
        Asm.Push_int 0;
        (* offset *)
        Asm.Op (Opcode.LOG 1);
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a code;
  let r =
    Interp.execute host
      (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_i "one log" 1 (List.length r.Interp.logs);
  match r.Interp.logs with
  | [ l ] ->
      check_u "topic" (U256.of_int 0xAB) (List.hd l.Interp.topics);
      check_s "address" (Address.to_hex contract_a) (Address.to_hex l.Interp.log_address)
  | _ -> Alcotest.fail "log missing"

let test_extcode_ops () =
  let host = Host.in_memory () in
  let b_code = Asm.assemble [ Asm.Op Opcode.STOP; Asm.Op Opcode.STOP; Asm.Op Opcode.STOP ] in
  Host.with_code host contract_b b_code;
  let code =
    return_word_program
      [ Asm.Push_u256 (Address.to_u256 contract_b); Asm.Op Opcode.EXTCODESIZE ]
  in
  Host.with_code host contract_a code;
  let r =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_u "extcodesize" (U256.of_int 3) (Abi.decode_uint r.Interp.return_data);
  (* EXTCODEHASH of an existing account is keccak(code); of a void one, 0. *)
  let hash_prog addr =
    return_word_program
      [ Asm.Push_u256 (Address.to_u256 addr); Asm.Op Opcode.EXTCODEHASH ]
  in
  Host.with_code host contract_a (hash_prog contract_b);
  let r =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_u "extcodehash" (U256.of_bytes_be (Keccak.digest b_code))
    (Abi.decode_uint r.Interp.return_data);
  Host.with_code host contract_a (hash_prog (addr 0xdead99));
  let r =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_u "extcodehash of void" U256.zero (Abi.decode_uint r.Interp.return_data)

let test_blockhash_window () =
  (* Only the most recent 256 blocks have hashes; everything else is 0. *)
  let prog h =
    return_word_program [ Asm.Push_int h; Asm.Op Opcode.BLOCKHASH ]
  in
  let current = Host.default_block.Host.number in
  let run h =
    let host = Host.in_memory () in
    Host.with_code host contract_a (prog h);
    Abi.decode_uint
      (Interp.execute host
         (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ()))
        .Interp.return_data
  in
  check_b "recent block has a hash" false (U256.is_zero (run (current - 10)));
  check_u "ancient block is zero" U256.zero (run (current - 300));
  check_u "future block is zero" U256.zero (run (current + 1))

let test_log_arities () =
  (* LOG0 and LOG4 at the extremes of the topic range. *)
  let host = Host.in_memory () in
  let code =
    Asm.assemble
      [
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op (Opcode.LOG 0);
        Asm.Push_int 4;
        Asm.Push_int 3;
        Asm.Push_int 2;
        Asm.Push_int 1;
        Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Op (Opcode.LOG 4);
        Asm.Op Opcode.STOP;
      ]
  in
  Host.with_code host contract_a code;
  let r =
    Interp.execute host (Interp.make_call ~caller:alice ~target:contract_a ~input:"" ())
  in
  check_b "success" true (Interp.succeeded r);
  check_i "two logs" 2 (List.length r.Interp.logs);
  match r.Interp.logs with
  | [ l0; l4 ] ->
      check_i "log0 topics" 0 (List.length l0.Interp.topics);
      Alcotest.(check (list string))
        "log4 topic order"
        [ "0x1"; "0x2"; "0x3"; "0x4" ]
        (List.map U256.to_hex l4.Interp.topics)
  | _ -> Alcotest.fail "logs"

let test_asm_size_limit () =
  check_b "oversized program rejected" true
    (match Asm.assemble [ Asm.Raw (String.make 70_000 '\000'); Asm.Label "x" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* ABI                                                                 *)
(* ------------------------------------------------------------------ *)

let test_abi_encode () =
  let data =
    Abi.encode_call ~signature:"transfer(address,uint256)"
      [ Abi.Addr (addr 0x1234); Abi.Uint (U256.of_int 1000) ]
  in
  check_s "selector" "0xa9059cbb" (Hexutil.to_hex (Hexutil.take 4 data));
  check_i "length" (4 + 64) (String.length data);
  check_u "second arg" (U256.of_int 1000)
    (U256.of_bytes_be (Hexutil.slice data 36 32))

let test_abi_dynamic_bytes () =
  let payload = "hello world" in
  let data = Abi.encode_args [ Abi.Uint U256.one; Abi.Bytes payload ] in
  (* head: word 0 = 1; word 1 = offset 64; tail: length + padded data *)
  check_u "static head" U256.one (U256.of_bytes_be (Hexutil.slice data 0 32));
  check_u "offset" (U256.of_int 64) (U256.of_bytes_be (Hexutil.slice data 32 32));
  check_u "length" (U256.of_int 11) (U256.of_bytes_be (Hexutil.slice data 64 32));
  check_s "payload" payload (String.sub data 96 11)

let test_abi_int_twos_complement () =
  (* Int values are encoded as raw two's-complement words. *)
  let minus_one = U256.neg U256.one in
  let data = Abi.encode_args [ Abi.Int minus_one ] in
  check_u "minus one is all-ones" U256.max_value
    (U256.of_bytes_be (Hexutil.slice data 0 32))

let test_abi_fixed_bytes () =
  let data = Abi.encode_args [ Abi.Fixed_bytes "\xde\xad" ] in
  check_s "right padded" "\xde\xad" (String.sub data 0 2);
  check_u "rest is zero" U256.zero
    (U256.of_bytes_be (Hexutil.slice data 2 30));
  check_b "oversized rejected" true
    (match Abi.encode_args [ Abi.Fixed_bytes (String.make 33 'x') ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_random_selector_avoids () =
  let busy = [ "\xaa\xbb\xcc\xdd"; Keccak.selector "transfer(address,uint256)" ] in
  let s = Abi.random_selector ~unavailable:busy ~seed:1 in
  check_i "4 bytes" 4 (String.length s);
  check_b "avoids busy list" false (List.mem s busy);
  check_s "deterministic" (Hexutil.to_hex s)
    (Hexutil.to_hex (Abi.random_selector ~unavailable:busy ~seed:1))

(* Host snapshot semantics used by revert paths. *)
let test_host_snapshots () =
  let host = Host.in_memory () in
  host.Host.set_balance alice (U256.of_int 10);
  let snap = host.Host.snapshot () in
  host.Host.set_balance alice (U256.of_int 99);
  host.Host.set_storage contract_a U256.one (U256.of_int 5);
  host.Host.create_account contract_b ~code:"\x00";
  host.Host.revert_to snap;
  check_u "balance restored" (U256.of_int 10) (host.Host.get_balance alice);
  check_u "storage restored" U256.zero (host.Host.get_storage contract_a U256.one);
  check_s "code removed" "" (host.Host.get_code contract_b)

let suite =
  [
    Alcotest.test_case "disasm basic" `Quick test_disasm_basic;
    Alcotest.test_case "disasm truncated push" `Quick test_disasm_truncated_push;
    Alcotest.test_case "has_opcode" `Quick test_has_opcode;
    Alcotest.test_case "jumpdests" `Quick test_jumpdests;
    Alcotest.test_case "push operands" `Quick test_push_operands;
    Alcotest.test_case "basic blocks" `Quick test_basic_blocks;
    Alcotest.test_case "cfg edges" `Quick test_cfg_edges;
    Alcotest.test_case "cfg dynamic jump" `Quick test_cfg_dynamic_jump_unknown;
    Alcotest.test_case "static stack verification" `Quick test_stack_check;
    Alcotest.test_case "asm labels" `Quick test_asm_labels;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
    Alcotest.test_case "opcode byte round-trip" `Quick test_opcode_roundtrip;
    Alcotest.test_case "arithmetic program" `Quick test_arithmetic_program;
    Alcotest.test_case "calldata echo" `Quick test_calldata_echo;
    Alcotest.test_case "storage roundtrip" `Quick test_storage_roundtrip;
    Alcotest.test_case "revert" `Quick test_revert;
    Alcotest.test_case "revert rolls back storage" `Quick test_revert_rolls_back_storage;
    Alcotest.test_case "invalid jump" `Quick test_invalid_jump;
    Alcotest.test_case "jumpdest inside push" `Quick test_jumpdest_in_push_rejected;
    Alcotest.test_case "stack underflow" `Quick test_stack_underflow;
    Alcotest.test_case "out of gas" `Quick test_out_of_gas;
    Alcotest.test_case "step limit" `Quick test_infinite_loop_hits_step_limit;
    Alcotest.test_case "keccak opcode" `Quick test_keccak_opcode;
    Alcotest.test_case "env opcodes" `Quick test_env_opcodes;
    Alcotest.test_case "callvalue/balance" `Quick test_callvalue_and_balance;
    Alcotest.test_case "cross-contract call" `Quick test_call;
    Alcotest.test_case "delegatecall storage context" `Quick test_delegatecall_context;
    Alcotest.test_case "delegatecall sender" `Quick test_delegatecall_sender;
    Alcotest.test_case "EIP-1167 canonical bytecode" `Quick test_eip1167_canonical;
    Alcotest.test_case "staticcall blocks writes" `Quick test_static_call_blocks_writes;
    Alcotest.test_case "create" `Quick test_create_deploys;
    Alcotest.test_case "create2" `Quick test_create2_address;
    Alcotest.test_case "value transfer" `Quick test_value_transfer_via_call;
    Alcotest.test_case "insufficient balance" `Quick test_insufficient_balance;
    Alcotest.test_case "tracer observations" `Quick test_tracer_observations;
    Alcotest.test_case "logs" `Quick test_logs;
    Alcotest.test_case "abi encode" `Quick test_abi_encode;
    Alcotest.test_case "abi dynamic bytes" `Quick test_abi_dynamic_bytes;
    Alcotest.test_case "abi int encoding" `Quick test_abi_int_twos_complement;
    Alcotest.test_case "abi fixed bytes" `Quick test_abi_fixed_bytes;
    Alcotest.test_case "random selector" `Quick test_random_selector_avoids;
    Alcotest.test_case "host snapshots" `Quick test_host_snapshots;
    Alcotest.test_case "extcode ops" `Quick test_extcode_ops;
    Alcotest.test_case "blockhash window" `Quick test_blockhash_window;
    Alcotest.test_case "log arities" `Quick test_log_arities;
    Alcotest.test_case "asm size limit" `Quick test_asm_size_limit;
  ]
