open Minisol

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u
let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"
let mallory = Evm.Address.of_hex "0x0000000000000000000000000000000000ba0bab"

(* ------------------------------------------------------------------ *)
(* Signatures and layout                                               *)
(* ------------------------------------------------------------------ *)

let test_signatures () =
  let c = Patterns.counter_logic () in
  Alcotest.(check (list string)) "sigs"
    [ "increment()"; "count()"; "setCount(uint256)" ]
    (Ast.signatures c);
  check_s "selector of transfer" "0xa9059cbb"
    (Hexutil.to_hex
       (Ast.selector
          (Ast.func "transfer"
             ~params:
               [
                 { Ast.p_name = "to"; p_ty = Ast.T_address };
                 { Ast.p_name = "amount"; p_ty = Ast.T_uint 256 };
               ]
             [])))

let test_honeypot_collision_by_construction () =
  let proxy = Patterns.honeypot_proxy () in
  let logic = Patterns.honeypot_logic () in
  check_s "paper's colliding selector" "0xdf4a3106"
    (Hexutil.to_hex (List.hd (Ast.selectors proxy)));
  check_s "logic selector equal" "0xdf4a3106"
    (Hexutil.to_hex (List.hd (Ast.selectors logic)))

let test_layout_packing () =
  (* bool, bool, address pack into slot 0 (22 bytes); uint256 claims slot 1. *)
  let c =
    Ast.contract "L"
      ~vars:
        [
          { Ast.v_name = "a"; v_ty = Ast.T_bool };
          { Ast.v_name = "b"; v_ty = Ast.T_bool };
          { Ast.v_name = "c"; v_ty = Ast.T_address };
          { Ast.v_name = "d"; v_ty = Ast.T_uint 256 };
        ]
  in
  let l = Layout.of_contract c in
  let e name = Layout.find l name in
  check_i "a slot" 0 (e "a").Layout.e_slot;
  check_i "a offset" 0 (e "a").Layout.e_offset;
  check_i "b offset" 1 (e "b").Layout.e_offset;
  check_i "c slot" 0 (e "c").Layout.e_slot;
  check_i "c offset" 2 (e "c").Layout.e_offset;
  check_i "d slot" 1 (e "d").Layout.e_slot;
  check_i "slot count" 2 (Layout.slot_count l)

let test_layout_overflow_to_next_slot () =
  (* address (20) + uint128 (16) cannot share a slot. *)
  let c =
    Ast.contract "L"
      ~vars:
        [
          { Ast.v_name = "a"; v_ty = Ast.T_address };
          { Ast.v_name = "b"; v_ty = Ast.T_uint 128 };
        ]
  in
  let l = Layout.of_contract c in
  check_i "b pushed to slot 1" 1 (Layout.find l "b").Layout.e_slot

let test_layout_mapping_own_slot () =
  let c =
    Ast.contract "L"
      ~vars:
        [
          { Ast.v_name = "flag"; v_ty = Ast.T_bool };
          { Ast.v_name = "m"; v_ty = Ast.T_mapping (Ast.T_address, Ast.T_uint 256) };
          { Ast.v_name = "after_"; v_ty = Ast.T_bool };
        ]
  in
  let l = Layout.of_contract c in
  check_i "mapping gets fresh slot" 1 (Layout.find l "m").Layout.e_slot;
  check_i "next var continues after" 2 (Layout.find l "after_").Layout.e_slot

(* ------------------------------------------------------------------ *)
(* Compiled behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let deploy chain ?(from = alice) c =
  match Chain.deploy chain ~from ~init_code:(Codegen.init_code c) () with
  | Ok addr -> addr
  | Error e -> Alcotest.failf "deploy %s failed: %s" c.Ast.c_name e

let call_fn chain ~from ~to_ ?(args = []) signature =
  Chain.call chain ~from ~to_
    ~input:(Evm.Abi.encode_call ~signature args)
    ()

let test_counter_behaviour () =
  let chain = Chain.create () in
  let counter = deploy chain (Patterns.counter_logic ()) in
  let r = call_fn chain ~from:alice ~to_:counter "increment()" in
  check_b "increment ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:alice ~to_:counter "increment()" in
  check_b "increment ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:alice ~to_:counter "count()" in
  check_u "count is 2" (U256.of_int 2) (Evm.Abi.decode_uint r.Chain.tx_return_data);
  let r =
    call_fn chain ~from:alice ~to_:counter "setCount(uint256)"
      ~args:[ Evm.Abi.Uint (U256.of_int 55) ]
  in
  check_b "setCount ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:alice ~to_:counter "count()" in
  check_u "count is 55" (U256.of_int 55) (Evm.Abi.decode_uint r.Chain.tx_return_data)

let test_unknown_selector_hits_fallback_revert () =
  let chain = Chain.create () in
  let counter = deploy chain (Patterns.counter_logic ()) in
  let r = call_fn chain ~from:alice ~to_:counter "nonexistent()" in
  check_b "reverts" true (r.Chain.tx_status = Evm.Interp.Reverted)

let test_nonpayable_guard () =
  let chain = Chain.create () in
  Chain.fund chain alice (U256.of_int 1_000_000);
  let counter = deploy chain (Patterns.counter_logic ()) in
  let r =
    Chain.call chain ~from:alice ~to_:counter
      ~input:(Evm.Abi.encode_call ~signature:"increment()" [])
      ~value:(U256.of_int 5) ()
  in
  check_b "value rejected" true (r.Chain.tx_status = Evm.Interp.Reverted)

(* A counter whose state lives at slot 2, clear of the proxy's own
   variables (slots 0 and 1) — collision-free forwarding. *)
let offset_counter () =
  Ast.contract "OffsetCounter"
    ~vars:
      [
        { Ast.v_name = "reserved0"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "reserved1"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "count"; v_ty = Ast.T_uint 256 };
      ]
    ~funcs:
      [
        Ast.func "increment"
          [ Ast.Store ("count", Ast.Bin (Ast.Add, Ast.Load "count", Ast.Const U256.one)) ];
        Ast.func "count" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
          [ Ast.Return_value (Ast.Load "count") ];
      ]

let test_proxy_forwarding_storage_context () =
  let chain = Chain.create () in
  let logic = deploy chain (offset_counter ()) in
  let proxy_contract = Patterns.slot_var_proxy () in
  let proxy = deploy chain proxy_contract in
  (* ctor stored owner = alice in slot 0; install logic address via setLogic. *)
  let r =
    call_fn chain ~from:alice ~to_:proxy "setLogic(address)"
      ~args:[ Evm.Abi.Addr logic ]
  in
  check_b "setLogic ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  (* Unknown selector falls through to delegate-forward. *)
  let r = call_fn chain ~from:alice ~to_:proxy "increment()" in
  check_b "forwarded" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:alice ~to_:proxy "count()" in
  check_u "count read through proxy" U256.one
    (Evm.Abi.decode_uint r.Chain.tx_return_data);
  (* The count lives in the PROXY's storage (slot 2 of the logic layout),
     not in the logic contract's. *)
  let host = Chain.host_at_head chain in
  check_u "logic storage untouched" U256.zero
    (host.Evm.Host.get_storage logic (U256.of_int 2));
  check_u "proxy slot 2 holds the count" U256.one
    (host.Evm.Host.get_storage proxy (U256.of_int 2))

let test_proxy_owner_gate () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain (Patterns.slot_var_proxy ()) in
  let r =
    call_fn chain ~from:mallory ~to_:proxy "setLogic(address)"
      ~args:[ Evm.Abi.Addr logic ]
  in
  check_b "non-owner rejected" true (r.Chain.tx_status = Evm.Interp.Reverted)

let test_eip1967_proxy_behaviour () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain (Patterns.eip1967_proxy ()) in
  (* Install admin directly (constructor-equivalent), then upgrade. *)
  Chain.set_storage_direct chain proxy Patterns.eip1967_admin_slot
    (Evm.Address.to_u256 alice);
  let r =
    call_fn chain ~from:alice ~to_:proxy "upgradeTo(address)"
      ~args:[ Evm.Abi.Addr logic ]
  in
  check_b "upgrade ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:mallory ~to_:proxy "increment()" in
  check_b "forwarded" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:mallory ~to_:proxy "count()" in
  check_u "count through 1967 proxy" U256.one
    (Evm.Abi.decode_uint r.Chain.tx_return_data);
  (* Non-admin cannot upgrade. *)
  let r =
    call_fn chain ~from:mallory ~to_:proxy "upgradeTo(address)"
      ~args:[ Evm.Abi.Addr mallory ]
  in
  check_b "non-admin upgrade rejected" true (r.Chain.tx_status = Evm.Interp.Reverted)

let test_eip1167_canonical_recognizer () =
  let logic = Evm.Address.of_hex "0x1234567890123456789012345678901234567890" in
  let code = Patterns.eip1167_runtime logic in
  check_i "45 bytes" 45 (String.length code);
  (match Patterns.eip1167_logic_address code with
  | Some a -> check_s "extracted" (Evm.Address.to_hex logic) (Evm.Address.to_hex a)
  | None -> Alcotest.fail "canonical bytes not recognized");
  check_b "non-minimal rejected" true
    (Patterns.eip1167_logic_address (code ^ "\x00") = None)

let test_honeypot_collision_behaviour () =
  let chain = Chain.create () in
  (* A token standing in for USDT at the hard-coded address. *)
  let host = Chain.host_at_head chain in
  host.Evm.Host.create_account Patterns.usdt_address
    ~code:(Codegen.runtime (Patterns.erc20ish_logic ()));
  let logic = deploy chain (Patterns.honeypot_logic ()) in
  let proxy = deploy chain ~from:mallory (Patterns.honeypot_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  Chain.fund chain proxy (U256.of_decimal "100000000000000000000");
  Chain.fund chain alice (U256.of_int 1_000_000);
  let balance_before = host.Evm.Host.get_balance alice in
  (* Alice calls the enticing free_ether_withdrawal(); because of the
     selector collision the PROXY's hidden function runs instead and no
     ether is paid out. *)
  let r = call_fn chain ~from:alice ~to_:proxy "free_ether_withdrawal()" in
  check_b "tx completes" true (r.Chain.tx_status = Evm.Interp.Returned);
  let balance_after = host.Evm.Host.get_balance alice in
  check_u "no 10-ether payout" balance_before balance_after;
  (* The internal call went to the USDT address via delegatecall, not to the
     logic contract. *)
  check_b "delegate went to USDT" true
    (List.exists
       (fun ic -> Evm.Address.equal ic.Chain.ic_to Patterns.usdt_address)
       r.Chain.tx_internal_calls);
  check_b "logic never executed" true
    (not
       (List.exists
          (fun ic -> Evm.Address.equal ic.Chain.ic_to logic)
          r.Chain.tx_internal_calls))

let test_audius_storage_collision_behaviour () =
  let chain = Chain.create () in
  let logic = deploy chain (Patterns.audius_logic ()) in
  let proxy = deploy chain ~from:alice (Patterns.audius_proxy ()) in
  Chain.set_storage_direct chain proxy U256.one (Evm.Address.to_u256 logic);
  let host = Chain.host_at_head chain in
  let owner_word () =
    U256.logand
      (host.Evm.Host.get_storage proxy U256.zero)
      (U256.pred (U256.shift_left U256.one 160))
  in
  check_u "owner initially alice" (Evm.Address.to_u256 alice) (owner_word ());
  (* Mallory calls initialize() through the proxy: the require passes even
     though the contract was "initialized", because the flags share slot 0
     with the owner address. *)
  let r = call_fn chain ~from:mallory ~to_:proxy "initialize()" in
  check_b "first takeover succeeds" true (r.Chain.tx_status = Evm.Interp.Returned);
  check_u "owner clobbered to mallory" (Evm.Address.to_u256 mallory) (owner_word ());
  (* And it remains callable again — the re-initialization bug: the owner
     write wiped the flags, so the require keeps passing. *)
  let r = call_fn chain ~from:mallory ~to_:proxy "initialize()" in
  check_b "re-initialization still possible" true
    (r.Chain.tx_status = Evm.Interp.Returned)

let test_diamond_gating () =
  let chain = Chain.create () in
  let facet = deploy chain (Patterns.counter_logic ()) in
  let proxy = deploy chain ~from:alice (Patterns.diamond_proxy ()) in
  (* Unregistered selector reverts. *)
  let r = call_fn chain ~from:alice ~to_:proxy "increment()" in
  check_b "unregistered selector reverts" true
    (r.Chain.tx_status = Evm.Interp.Reverted);
  (* Register increment()'s selector, then it forwards. *)
  let sel_word =
    U256.shift_left (U256.of_bytes_be (Keccak.selector "increment()")) 224
  in
  ignore sel_word;
  let sel_as_word =
    U256.of_bytes_be (Keccak.selector "increment()")
  in
  let r =
    call_fn chain ~from:alice ~to_:proxy "setFacet(uint256,address)"
      ~args:[ Evm.Abi.Uint sel_as_word; Evm.Abi.Addr facet ]
  in
  check_b "setFacet ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r = call_fn chain ~from:alice ~to_:proxy "increment()" in
  check_b "registered selector forwards" true
    (r.Chain.tx_status = Evm.Interp.Returned)

let test_library_caller_delegatecall_outside_fallback () =
  let chain = Chain.create () in
  let lib = deploy chain (Patterns.counter_logic ()) in
  let user = deploy chain (Patterns.library_caller ~lib) in
  let r =
    call_fn chain ~from:alice ~to_:user "addChecked(uint256,uint256)"
      ~args:[ Evm.Abi.Uint (U256.of_int 2); Evm.Abi.Uint (U256.of_int 40) ]
  in
  check_b "runs" true (r.Chain.tx_status = Evm.Interp.Returned);
  check_b "made a delegatecall" true
    (List.exists
       (fun ic -> ic.Chain.ic_kind = Evm.Interp.Delegatecall)
       r.Chain.tx_internal_calls);
  let r = call_fn chain ~from:alice ~to_:user "total()" in
  check_u "sum stored" (U256.of_int 42) (Evm.Abi.decode_uint r.Chain.tx_return_data)

let test_mapping_behaviour () =
  let chain = Chain.create () in
  let token = deploy chain (Patterns.erc20ish_logic ()) in
  let r =
    call_fn chain ~from:alice ~to_:token "mint(uint256)"
      ~args:[ Evm.Abi.Uint (U256.of_int 500) ]
  in
  check_b "mint ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  let r =
    call_fn chain ~from:alice ~to_:token "balanceOf(address)"
      ~args:[ Evm.Abi.Addr alice ]
  in
  check_u "balance" (U256.of_int 500) (Evm.Abi.decode_uint r.Chain.tx_return_data);
  let r =
    call_fn chain ~from:alice ~to_:token "balanceOf(address)"
      ~args:[ Evm.Abi.Addr mallory ]
  in
  check_u "other balance zero" U256.zero (Evm.Abi.decode_uint r.Chain.tx_return_data)

let test_packed_var_read_write () =
  (* Writing a packed bool must not clobber its slot neighbours. *)
  let c =
    Ast.contract "Packed"
      ~vars:
        [
          { Ast.v_name = "flag1"; v_ty = Ast.T_bool };
          { Ast.v_name = "flag2"; v_ty = Ast.T_bool };
          { Ast.v_name = "who"; v_ty = Ast.T_address };
        ]
      ~funcs:
        [
          Ast.func "setFlag2" [ Ast.Store ("flag2", Ast.Const U256.one) ];
          Ast.func "setWho" [ Ast.Store ("who", Ast.Caller) ];
          Ast.func "getFlag2" ~mutability:Ast.View ~returns:Ast.T_bool
            [ Ast.Return_value (Ast.Load "flag2") ];
          Ast.func "getWho" ~mutability:Ast.View ~returns:Ast.T_address
            [ Ast.Return_value (Ast.Load "who") ];
        ]
  in
  let chain = Chain.create () in
  let addr = deploy chain c in
  ignore (call_fn chain ~from:alice ~to_:addr "setWho()");
  ignore (call_fn chain ~from:alice ~to_:addr "setFlag2()");
  let r = call_fn chain ~from:alice ~to_:addr "getWho()" in
  check_u "address survives flag write" (Evm.Address.to_u256 alice)
    (Evm.Abi.decode_uint r.Chain.tx_return_data);
  let r = call_fn chain ~from:alice ~to_:addr "getFlag2()" in
  check_u "flag set" U256.one (Evm.Abi.decode_uint r.Chain.tx_return_data)

(* ------------------------------------------------------------------ *)
(* Layout invariants (property tests)                                  *)
(* ------------------------------------------------------------------ *)

let arb_var_list =
  let open QCheck in
  let ty_gen =
    Gen.oneof
      [
        Gen.return Ast.T_bool;
        Gen.return Ast.T_address;
        Gen.map (fun n -> Ast.T_uint (8 * (1 + n))) (Gen.int_bound 31);
        Gen.map (fun n -> Ast.T_bytes (1 + n)) (Gen.int_bound 31);
        Gen.return (Ast.T_mapping (Ast.T_address, Ast.T_uint 256));
      ]
  in
  let gen =
    Gen.map
      (fun tys ->
        List.mapi (fun i ty -> { Ast.v_name = Printf.sprintf "x%d" i; v_ty = ty }) tys)
      (Gen.list_size (Gen.int_range 1 12) ty_gen)
  in
  make
    ~print:(fun vars ->
      String.concat ";" (List.map (fun v -> Ast.canonical_type v.Ast.v_ty) vars))
    gen

let layout_of vars = Layout.of_contract (Ast.contract "P" ~vars)

let prop_layout name f = QCheck.Test.make ~name ~count:300 arb_var_list f

let layout_properties =
  [
    prop_layout "entries in declaration order with non-decreasing slots"
      (fun vars ->
        let l = layout_of vars in
        List.length l = List.length vars
        && fst
             (List.fold_left
                (fun (ok, prev) e -> (ok && e.Layout.e_slot >= prev, e.Layout.e_slot))
                (true, 0) l));
    prop_layout "every entry fits its slot" (fun vars ->
        List.for_all
          (fun e -> e.Layout.e_offset >= 0 && e.Layout.e_offset + e.Layout.e_size <= 32)
          (layout_of vars));
    prop_layout "no two entries overlap" (fun vars ->
        let l = layout_of vars in
        List.for_all
          (fun (a : Layout.entry) ->
            List.for_all
              (fun (b : Layout.entry) ->
                a.Layout.e_var.Ast.v_name = b.Layout.e_var.Ast.v_name
                || a.Layout.e_slot <> b.Layout.e_slot
                || a.Layout.e_offset + a.Layout.e_size <= b.Layout.e_offset
                || b.Layout.e_offset + b.Layout.e_size <= a.Layout.e_offset)
              l)
          l);
    prop_layout "mappings own a whole slot" (fun vars ->
        let l = layout_of vars in
        List.for_all
          (fun (e : Layout.entry) ->
            match e.Layout.e_var.Ast.v_ty with
            | Ast.T_mapping _ ->
                e.Layout.e_offset = 0 && e.Layout.e_size = 32
                && List.for_all
                     (fun (o : Layout.entry) ->
                       o.Layout.e_var.Ast.v_name = e.Layout.e_var.Ast.v_name
                       || o.Layout.e_slot <> e.Layout.e_slot)
                     l
            | _ -> true)
          l);
    prop_layout "compiled contracts pass static stack verification" (fun vars ->
        let funcs =
          List.filter_map
            (fun v ->
              match v.Ast.v_ty with
              | Ast.T_mapping _ -> None
              | _ ->
                  Some
                    (Ast.func ("s_" ^ v.Ast.v_name)
                       ~params:[ { Ast.p_name = "x"; p_ty = Ast.T_uint 256 } ]
                       [ Ast.Store (v.Ast.v_name, Ast.Param 0) ]))
            vars
        in
        Evm.Stack_check.is_safe (Codegen.runtime (Ast.contract "P" ~vars ~funcs)));
    prop_layout "compiled contracts assemble" (fun vars ->
        (* Every random layout must survive code generation. *)
        let funcs =
          List.filter_map
            (fun v ->
              match v.Ast.v_ty with
              | Ast.T_mapping _ -> None
              | _ ->
                  Some
                    (Ast.func ("get_" ^ v.Ast.v_name) ~mutability:Ast.View
                       ~returns:v.Ast.v_ty
                       [ Ast.Return_value (Ast.Load v.Ast.v_name) ]))
            vars
        in
        String.length (Codegen.runtime (Ast.contract "P" ~vars ~funcs)) > 0);
  ]

(* ------------------------------------------------------------------ *)
(* Pretty printer                                                      *)
(* ------------------------------------------------------------------ *)

let test_pretty_rendering () =
  let src = Pretty.contract (Patterns.honeypot_proxy ()) in
  let contains needle =
    let n = String.length needle and h = String.length src in
    let rec at i = i + n <= h && (String.sub src i n = needle || at (i + 1)) in
    at 0
  in
  check_b "has contract header" true (contains "contract HoneypotProxy");
  check_b "declares owner" true (contains "address private owner;");
  check_b "has the malicious function" true (contains "function impl_LUsXCWD2AKCc()");
  check_b "shows the delegatecall" true (contains "delegatecall");
  check_b "has fallback" true (contains "fallback(bytes calldata)");
  (* Every pattern renders without exceptions. *)
  List.iter
    (fun c -> check_b "renders" true (String.length (Pretty.contract c) > 20))
    [
      Patterns.audius_proxy ();
      Patterns.audius_logic ();
      Patterns.eip1967_proxy ();
      Patterns.diamond_proxy ();
      Patterns.erc20ish_logic ();
    ]

let test_codegen_errors () =
  (* Referencing a missing parameter fails at compile time. *)
  let bad_param =
    Ast.contract "Bad"
      ~funcs:[ Ast.func "f" [ Ast.Return_value (Ast.Param 3) ] ]
  in
  check_b "param out of range" true
    (match Codegen.runtime bad_param with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Referencing a missing storage variable fails too. *)
  let bad_var =
    Ast.contract "Bad2" ~funcs:[ Ast.func "f" [ Ast.Return_value (Ast.Load "nope") ] ]
  in
  check_b "unknown variable" true
    (match Codegen.runtime bad_var with exception Not_found -> true | _ -> false)

let test_evalref_boundaries () =
  let st = Evalref.create () in
  (* Unsupported statements raise, as documented. *)
  let with_transfer =
    Ast.contract "T"
      ~funcs:
        [ Ast.func "pay" [ Ast.Transfer (Ast.Caller, Ast.Const U256.one) ] ]
  in
  check_b "transfer unsupported" true
    (match Evalref.call st with_transfer ~signature:"pay()" ~args:[] with
    | exception Evalref.Unsupported _ -> true
    | _ -> false);
  (* Unknown signature without a fallback reverts. *)
  let plain = Patterns.counter_logic () in
  check_b "unknown selector reverts" true
    (Evalref.call st plain ~signature:"nope()" ~args:[] = Evalref.Reverted);
  (* Nonpayable guard applies. *)
  let env = { Evalref.default_env with Evalref.e_value = U256.one } in
  check_b "nonpayable rejects value" true
    (Evalref.call ~env st plain ~signature:"increment()" ~args:[] = Evalref.Reverted)

let suite =
  [
    Alcotest.test_case "signatures" `Quick test_signatures;
    Alcotest.test_case "codegen errors" `Quick test_codegen_errors;
    Alcotest.test_case "evalref boundaries" `Quick test_evalref_boundaries;
    Alcotest.test_case "pretty rendering" `Quick test_pretty_rendering;
    Alcotest.test_case "honeypot collision by construction" `Quick
      test_honeypot_collision_by_construction;
    Alcotest.test_case "layout packing" `Quick test_layout_packing;
    Alcotest.test_case "layout overflow" `Quick test_layout_overflow_to_next_slot;
    Alcotest.test_case "layout mapping slots" `Quick test_layout_mapping_own_slot;
    Alcotest.test_case "counter behaviour" `Quick test_counter_behaviour;
    Alcotest.test_case "fallback revert" `Quick test_unknown_selector_hits_fallback_revert;
    Alcotest.test_case "nonpayable guard" `Quick test_nonpayable_guard;
    Alcotest.test_case "proxy forwarding context" `Quick
      test_proxy_forwarding_storage_context;
    Alcotest.test_case "proxy owner gate" `Quick test_proxy_owner_gate;
    Alcotest.test_case "eip1967 proxy" `Quick test_eip1967_proxy_behaviour;
    Alcotest.test_case "eip1167 recognizer" `Quick test_eip1167_canonical_recognizer;
    Alcotest.test_case "honeypot collision behaviour" `Quick
      test_honeypot_collision_behaviour;
    Alcotest.test_case "audius collision behaviour" `Quick
      test_audius_storage_collision_behaviour;
    Alcotest.test_case "diamond gating" `Quick test_diamond_gating;
    Alcotest.test_case "library caller" `Quick
      test_library_caller_delegatecall_outside_fallback;
    Alcotest.test_case "mapping behaviour" `Quick test_mapping_behaviour;
    Alcotest.test_case "packed read/write" `Quick test_packed_var_read_write;
  ]
  @ List.map QCheck_alcotest.to_alcotest layout_properties
