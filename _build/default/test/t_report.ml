module Json = Report.Json

let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let test_table_alignment () =
  let out =
    Report.table ~title:"T" ~header:[ "a"; "bbbb" ]
      [ [ "xx"; "y" ]; [ "1"; "22222" ] ]
  in
  check_b "title line" true (String.length out > 0 && String.sub out 0 4 = "== T");
  (* All data lines align to the same width grid: the separator is as long
     as the padded header. *)
  let lines = String.split_on_char '\n' out in
  (match lines with
  | _title :: header :: sep :: _ ->
      check_b "separator matches header width" true
        (String.length sep = String.length header)
  | _ -> Alcotest.fail "table shape")

let test_histogram_scaling () =
  let out = Report.histogram ~width:10 ~title:"H" [ ("a", 100); ("b", 50); ("c", 0) ] in
  let count_hashes line =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
  in
  match String.split_on_char '\n' out with
  | _ :: la :: lb :: lc :: _ ->
      check_b "max bar" true (count_hashes la = 10);
      check_b "half bar" true (count_hashes lb = 5);
      check_b "zero bar" true (count_hashes lc = 0)
  | _ -> Alcotest.fail "histogram shape"

let test_series_rendering () =
  let out =
    Report.series ~title:"S" ~xlabel:"year" ~ylabel:"count"
      [ ("2021", 1.5); ("2022", 20.0) ]
  in
  check_b "has axis note" true
    (let rec has i =
       i + 13 <= String.length out
       && (String.sub out i 13 = "count vs year" || has (i + 1))
     in
     has 0);
  check_b "rows present" true (String.length out > 30)

let test_json_parse_basics () =
  let ok s v =
    match Json.parse s with
    | Ok got -> check_b ("parse " ^ s) true (got = v)
    | Error e -> Alcotest.failf "parse %s failed: %s" s e
  in
  ok "42" (Json.Int 42);
  ok "-7" (Json.Int (-7));
  ok "3.5" (Json.Float 3.5);
  ok "true" (Json.Bool true);
  ok "null" Json.Null;
  ok "\"a\\nb\"" (Json.String "a\nb");
  ok "[]" (Json.List []);
  ok "{}" (Json.Obj []);
  ok "[1, 2]" (Json.List [ Json.Int 1; Json.Int 2 ]);
  ok "{\"k\": [true]}" (Json.Obj [ ("k", Json.List [ Json.Bool true ]) ]);
  (* Errors. *)
  List.iter
    (fun bad ->
      check_b ("reject " ^ bad) true
        (match Json.parse bad with Error _ -> true | Ok _ -> false))
    [ "{"; "[1,]"; "\"open"; "tru"; "1 2"; "" ]

let test_json_unicode_escape () =
  match Json.parse "\"\\u0041\\u00e9\"" with
  | Ok (Json.String s) -> check_s "A + e-acute utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape"

(* Round trip: everything the emitter produces must parse back to itself. *)
let arb_json =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      oneof
        [
          map (fun n -> Json.Int n) (int_range (-1000) 1000);
          map (fun b -> Json.Bool b) bool;
          return Json.Null;
          map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 20));
        ]
    else
      frequency
        [
          (2, gen 0);
          ( 1,
            map (fun l -> Json.List l) (list_size (int_bound 4) (gen (depth - 1)))
          );
          ( 1,
            map
              (fun kvs ->
                Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) kvs))
              (list_size (int_bound 4) (gen (depth - 1))) );
        ]
  in
  QCheck.make ~print:(Json.to_string ~pretty:false) (gen 3)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"json print/parse round-trip" ~count:300 arb_json
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok got -> got = v
      | Error _ -> false)

let qcheck_roundtrip_compact =
  QCheck.Test.make ~name:"compact json round-trip" ~count:300 arb_json
    (fun v ->
      match Json.parse (Json.to_string ~pretty:false v) with
      | Ok got -> got = v
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "histogram scaling" `Quick test_histogram_scaling;
    Alcotest.test_case "series rendering" `Quick test_series_rendering;
    Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json unicode escape" `Quick test_json_unicode_escape;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_compact;
  ]
