(* Daemon benchmark: load-generator sweeps (requests/sec and latency
   percentiles under concurrent clients) plus incremental-vs-full
   re-analysis timing over scripted chain advances.  Writes
   BENCH_serve.json.

   Usage: dune exec bench/bench_serve.exe *)

module Generate = Dataset.Generate
module Json = Report.Json

let clock = Obs.Clock.real

let time f =
  let t0 = Obs.Clock.now clock in
  let result = f () in
  (result, Obs.Clock.now clock -. t0)

(* Current git revision, read straight from .git (no subprocess). *)
let git_rev () =
  let read_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> Some (String.trim s)
    | exception Sys_error _ -> None
  in
  match read_file ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
      let ref_path = String.sub head 5 (String.length head - 5) in
      match read_file (Filename.concat ".git" ref_path) with
      | Some rev -> rev
      | None -> "unknown")
  | Some rev -> rev
  | None -> "unknown"

let out_path = "BENCH_serve.json"

let bench_config =
  { Generate.quick_config with Generate.total = 600; seed = 42 }

let client_sweep = [ 1; 2; 4; 8 ]
let requests_per_client = 150
let advances = 3

(* Overload sweep: fixed well-behaved load, rising hostile-client count,
   against a deliberately small admission gate so shedding engages. *)
let attacker_sweep = [ 0; 2; 4; 8 ]
let overload_clients = 4
let overload_requests = 100
let hostile_seed = 1
let overload_max_conns = 8
let overload_queue_limit = 4
let overload_idle_ms = 500

(* Reorg/failover sweep (schema 3): reorg depth x endpoint-pool size,
   measuring incremental re-analysis cost and finding retractions under
   seeded rollbacks, plus a transport-level failover microbench (wall
   cost of losing the primary as the pool grows). *)
let reorg_depth_sweep = [ 0; 3 ]
let reorg_endpoint_sweep = [ 1; 3 ]
let reorg_advances = 10

(* Advance seed pinned so depth-3 reorgs actually orphan deployments
   within [reorg_advances] (upgrades pad the chain with empty blocks,
   making deep-enough rollbacks rare under most seeds). *)
let reorg_advance_seed = 28

let reorg_config =
  { Generate.quick_config with Generate.total = 400; seed = 42 }

let failover_endpoint_sweep = [ 1; 2; 3 ]
let failover_calls = 200
let failover_fault_rate = 0.9
let failover_fault_seed = 9

(* Tracing-overhead sweep (schema 4): the same loadgen mix against the
   same landscape, once with no trace recorder and once with a recorder
   attached and a trace context on every request.  The always-on flight
   ring and metrics run in both modes, so the delta isolates the cost of
   span recording + context propagation.  Target: < 5% on throughput. *)
let tracing_clients = 4
let tracing_requests = 150
let tracing_trace_seed = 7

(* Flight-ring microbench: record cost vs ring capacity.  The ring is
   always on in the daemon, so its per-event cost bounds the floor of
   observability overhead. *)
let flight_capacity_sweep = [ 64; 256; 1024; 4096 ]
let flight_events = 200_000

let shed_reasons = [ "draining"; "max_conns"; "queue_full" ]

let shed_counts registry =
  match Obs.Metrics.find registry "proxion_serve_shed_connections_total" with
  | None -> List.map (fun r -> (r, 0.0)) shed_reasons
  | Some fam ->
      List.map
        (fun r ->
          ( r,
            Option.value ~default:0.0
              (Obs.Metrics.value ~labels:[ ("reason", r) ] registry fam) ))
        shed_reasons

let analysis_config = Proxion.Pipeline.Config.(default |> with_batch_size 32)

let cold_report (land_ : Generate.t) =
  let t =
    Proxion.Analyzer.create ~config:analysis_config
      ~chain:land_.Generate.chain ~source:land_.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  Proxion.Analyzer.report t

let report_string r =
  Report.Json.to_string (Proxion.Serialize.report_to_json r)

(* Endpoint pool for the reorg sweep: [n] archive endpoints, the third
   one Byzantine at 25% so quorum voting has real work to do. *)
let reorg_pool n =
  let endpoints =
    List.init n (fun i ->
        let name = Printf.sprintf "archive-%d" (i + 1) in
        if i = 2 then
          Resilience.Transport.endpoint ~byzantine:0.25 ~byz_seed:1 name
        else Resilience.Transport.endpoint name)
  in
  Resilience.Transport.config ~endpoints ~quorum:(min 2 n) ()

(* One (depth, endpoints) cell: fresh landscape, resident daemon with a
   scripted reorg-capable advancer, [reorg_advances] increments, then
   the byte-identity witness against a cold re-run. *)
let reorg_cell ~depth ~endpoints:n =
  let land_ = Generate.generate reorg_config in
  (* Deployment-only advances with the full 5-shape cycle: the last
     shape is the finding-bearing honeypot pair, and with no upgrade
     events padding the tail with empty blocks it sits at the chain tip
     where a depth-2+ rollback can orphan it — making the sweep's
     retraction counts a real signal rather than structurally zero. *)
  let spec =
    { Serve.Advance.deployments = 5; upgrades = 0; reorg_depth = depth }
  in
  let config =
    Serve.Config.(
      default |> with_workers 2
      |> with_analysis analysis_config
      |> with_advance_seed reorg_advance_seed
      |> with_advance_spec spec
      |> with_resilience (reorg_pool n))
  in
  let daemon, analyze_s =
    time (fun () ->
        match Serve.Daemon.create ~config land_ with
        | Ok d -> d
        | Error e -> failwith ("reorg daemon create: " ^ e))
  in
  let dirty = ref 0 and fresh = ref 0 and retracted = ref 0 in
  let _, adv_s =
    time (fun () ->
        for _ = 1 to reorg_advances do
          let r = Serve.Daemon.advance daemon in
          dirty := !dirty + r.Serve.Daemon.adv_dirty;
          fresh := !fresh + r.Serve.Daemon.adv_new;
          retracted := !retracted + r.Serve.Daemon.adv_retracted
        done)
  in
  let reorgs = List.length (Serve.Daemon.reorgs daemon) in
  let warm =
    Serve.Store.report
      (Serve.Daemon.store daemon)
      ~unique_codes:(Serve.Daemon.unique_codes daemon)
  in
  let identical = report_string (cold_report land_) = report_string warm in
  Serve.Daemon.stop daemon;
  Printf.eprintf
    "  depth %d x %d endpoints: %d reorgs, %d retracted, %d dirty + %d new \
     in %.3fs (identical=%b)\n\
     %!"
    depth n reorgs !retracted !dirty !fresh adv_s identical;
  Json.Obj
    [
      ("reorg_depth", Json.Int depth);
      ("endpoints", Json.Int n);
      ("advances", Json.Int reorg_advances);
      ("reorgs", Json.Int reorgs);
      ("retracted_findings", Json.Int !retracted);
      ("dirty_subjects", Json.Int !dirty);
      ("new_subjects", Json.Int !fresh);
      ("store_size", Json.Int (Serve.Store.size (Serve.Daemon.store daemon)));
      ("initial_analysis_seconds", Json.Float analyze_s);
      ("advance_seconds_total", Json.Float adv_s);
      ( "advance_seconds_mean",
        Json.Float (adv_s /. float_of_int reorg_advances) );
      ("identical_to_cold", Json.Bool identical);
    ]

(* Failover microbench: the primary endpoint drops [failover_fault_rate]
   of its calls; measure the wall cost per canonical answer as healthy
   fallbacks are added to the pool (quorum 1 = health-ranked failover). *)
let failover_row n =
  let chain = Chain.create () in
  let subject = Chain.install_contract chain ~runtime:"\x00" () in
  for slot = 0 to 7 do
    Chain.set_storage_direct chain subject (U256.of_int slot)
      (U256.of_int (100 + slot))
  done;
  Chain.advance_blocks chain 12;
  let endpoints =
    List.init n (fun i ->
        let name = Printf.sprintf "archive-%d" (i + 1) in
        if i = 0 then
          Resilience.Transport.endpoint
            ~plan:
              (Resilience.Fault_plan.spec ~seed:failover_fault_seed
                 ~fault_rate:failover_fault_rate ())
            name
        else Resilience.Transport.endpoint name)
  in
  let cfg = Resilience.Transport.config ~endpoints ~quorum:1 () in
  let t = Resilience.Transport.create ~config:cfg ~chain () in
  let ok = ref 0 in
  let (), wall_s =
    time (fun () ->
        for i = 1 to failover_calls do
          let params =
            [
              Evm.Address.to_hex subject;
              Printf.sprintf "0x%x" (i mod 8);
              "latest";
            ]
          in
          match Resilience.Transport.call t ~meth:"eth_getStorageAt" ~params with
          | Ok _ -> incr ok
          | Error _ -> ()
        done)
  in
  let st = Resilience.Transport.stats t in
  Printf.eprintf
    "  failover %d endpoints: %d/%d ok, %d retries, %d breaker opens, \
     %.2f virtual s, %.3fs wall\n\
     %!"
    n !ok failover_calls st.Resilience.Transport.retries
    st.Resilience.Transport.breaker_opens
    st.Resilience.Transport.virtual_elapsed wall_s;
  Json.Obj
    [
      ("endpoints", Json.Int n);
      ("calls", Json.Int failover_calls);
      ("ok", Json.Int !ok);
      ("retries", Json.Int st.Resilience.Transport.retries);
      ("gave_up", Json.Int st.Resilience.Transport.gave_up);
      ("breaker_opens", Json.Int st.Resilience.Transport.breaker_opens);
      ("virtual_seconds", Json.Float st.Resilience.Transport.virtual_elapsed);
      ("wall_seconds", Json.Float wall_s);
      ( "mean_call_ms",
        Json.Float (wall_s *. 1000.0 /. float_of_int failover_calls) );
    ]

(* One tracing mode: a fresh daemon over the given landscape, the fixed
   loadgen mix, and (when tracing) the recorder's own span count as a
   volume witness. *)
let tracing_row ~land_ ~addresses traced =
  let config =
    Serve.Config.(default |> with_workers 2 |> with_analysis analysis_config)
  in
  let trace = if traced then Some (Obs.Trace.create ()) else None in
  let daemon =
    match Serve.Daemon.create ~config ?trace land_ with
    | Ok d -> d
    | Error e -> failwith ("tracing daemon create: " ^ e)
  in
  (match Serve.Daemon.start daemon with
  | Ok () -> ()
  | Error e -> failwith ("tracing daemon start: " ^ e));
  let port = Serve.Daemon.port daemon in
  let stats =
    match
      Serve.Loadgen.run
        ?trace_seed:(if traced then Some tracing_trace_seed else None)
        ~port ~clients:tracing_clients ~requests:tracing_requests ~addresses ()
    with
    | Error e -> failwith ("tracing loadgen: " ^ e)
    | Ok s -> s
  in
  Serve.Daemon.stop daemon;
  let spans =
    match trace with Some tr -> Obs.Trace.count tr | None -> 0
  in
  Printf.eprintf "  tracing %s: %.0f req/s  p50 %.3f ms  p99 %.3f ms%s\n%!"
    (if traced then "on " else "off")
    stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p50_ms
    stats.Serve.Loadgen.lg_p99_ms
    (if traced then Printf.sprintf "  (%d spans)" spans else "");
  (stats, spans)

(* Flight-ring record cost at one capacity: alternate bare and
   field-carrying events, report the per-event wall cost. *)
let flight_row capacity =
  let fl = Obs.Flight.create ~capacity () in
  let fields = [ ("conn", Json.Int 7); ("reason", Json.String "bench") ] in
  let (), wall_s =
    time (fun () ->
        for i = 1 to flight_events do
          if i land 1 = 0 then Obs.Flight.record ~fields fl "tick"
          else Obs.Flight.record fl "tick"
        done)
  in
  let ns = wall_s *. 1e9 /. float_of_int flight_events in
  Printf.eprintf "  flight capacity %4d: %.0f ns/event (%d events, %.3fs)\n%!"
    capacity ns flight_events wall_s;
  Json.Obj
    [
      ("capacity", Json.Int capacity);
      ("events", Json.Int flight_events);
      ("wall_seconds", Json.Float wall_s);
      ("ns_per_event", Json.Float ns);
    ]

let () =
  let land_ = Generate.generate bench_config in
  let config =
    Serve.Config.(default |> with_workers 4 |> with_analysis analysis_config)
  in
  let daemon, startup_s =
    time (fun () ->
        match Serve.Daemon.create ~config land_ with
        | Ok d -> d
        | Error e -> failwith ("daemon create: " ^ e))
  in
  (match Serve.Daemon.start daemon with
  | Ok () -> ()
  | Error e -> failwith ("daemon start: " ^ e));
  let port = Serve.Daemon.port daemon in
  Printf.eprintf "daemon up on port %d (%.2fs startup), sweeping...\n%!" port
    startup_s;
  let addresses =
    List.map (fun l -> l.Generate.l_address) land_.Generate.labels
  in
  (* 1. Concurrent-client throughput/latency sweep. *)
  let sweep =
    List.map
      (fun clients ->
        match
          Serve.Loadgen.run ~port ~clients ~requests:requests_per_client
            ~addresses ()
        with
        | Error e -> failwith ("loadgen: " ^ e)
        | Ok stats ->
            Printf.eprintf
              "  %d clients: %.0f req/s  p50 %.3f ms  p99 %.3f ms\n%!" clients
              stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p50_ms
              stats.Serve.Loadgen.lg_p99_ms;
            Serve.Loadgen.to_json stats)
      client_sweep
  in
  (* 2. Incremental-vs-full: apply scripted advances on the resident
     daemon and compare each increment's wall clock against a cold full
     re-analysis of the advanced chain (which also witnesses the
     byte-identity contract). *)
  let incremental =
    List.init advances (fun i ->
        let result, inc_s = time (fun () -> Serve.Daemon.advance daemon) in
        let cold, full_s = time (fun () -> cold_report land_) in
        let warm =
          Serve.Store.report
            (Serve.Daemon.store daemon)
            ~unique_codes:(Serve.Daemon.unique_codes daemon)
        in
        let identical = report_string cold = report_string warm in
        let speedup = if inc_s > 0.0 then full_s /. inc_s else 0.0 in
        Printf.eprintf
          "  advance %d: %d dirty + %d new in %.3fs vs full %.3fs (%.1fx, \
           identical=%b)\n\
           %!"
          (i + 1) result.Serve.Daemon.adv_dirty result.Serve.Daemon.adv_new
          inc_s full_s speedup identical;
        Json.Obj
          [
            ("advance", Json.Int (i + 1));
            ("dirty_subjects", Json.Int result.Serve.Daemon.adv_dirty);
            ("new_subjects", Json.Int result.Serve.Daemon.adv_new);
            ( "store_size",
              Json.Int (Serve.Store.size (Serve.Daemon.store daemon)) );
            ("incremental_seconds", Json.Float inc_s);
            ("full_seconds", Json.Float full_s);
            ("speedup", Json.Float speedup);
            ("identical_report", Json.Bool identical);
          ])
  in
  Serve.Daemon.stop daemon;
  (* 3. Overload sweep on a fresh daemon with a small admission gate:
     goodput and tail latency for well-behaved clients as hostile
     personas pile on, with the daemon's own shed counters. *)
  let overload_config =
    Serve.Config.(
      default |> with_workers 2
      |> with_max_conns overload_max_conns
      |> with_queue_limit overload_queue_limit
      |> with_idle_timeout_ms overload_idle_ms
      |> with_analysis analysis_config)
  in
  let overload_registry = Obs.Metrics.create () in
  let overload_daemon =
    match
      Serve.Daemon.create ~config:overload_config ~registry:overload_registry
        land_
    with
    | Ok d -> d
    | Error e -> failwith ("overload daemon create: " ^ e)
  in
  (match Serve.Daemon.start overload_daemon with
  | Ok () -> ()
  | Error e -> failwith ("overload daemon start: " ^ e));
  let overload_port = Serve.Daemon.port overload_daemon in
  let prev_shed = ref (shed_counts overload_registry) in
  let overload =
    List.map
      (fun attackers ->
        let stats, hostile =
          if attackers = 0 then
            match
              Serve.Loadgen.run ~port:overload_port ~clients:overload_clients
                ~requests:overload_requests ~addresses ()
            with
            | Error e -> failwith ("overload loadgen: " ^ e)
            | Ok s -> (s, None)
          else
            match
              Serve.Loadgen.run_hostile ~port:overload_port
                ~clients:overload_clients ~requests:overload_requests
                ~attackers ~seed:hostile_seed ~addresses ()
            with
            | Error e -> failwith ("hostile loadgen: " ^ e)
            | Ok (s, h) -> (s, Some h)
        in
        let now_shed = shed_counts overload_registry in
        let delta =
          List.map2
            (fun (r, now) (_, before) -> (r, now -. before))
            now_shed !prev_shed
        in
        prev_shed := now_shed;
        Printf.eprintf
          "  %d attackers: goodput %.0f req/s  p99 %.3f ms  (%d shed seen, \
           %d errors)\n\
           %!"
          attackers stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p99_ms
          stats.Serve.Loadgen.lg_shed stats.Serve.Loadgen.lg_errors;
        Json.Obj
          ([
             ("attackers", Json.Int attackers);
             ("well_behaved", Serve.Loadgen.to_json stats);
             ( "daemon_shed_connections",
               Json.Obj (List.map (fun (r, v) -> (r, Json.Float v)) delta) );
           ]
          @
          match hostile with
          | None -> []
          | Some h -> [ ("hostile", Serve.Loadgen.hostile_to_json h) ]))
      attacker_sweep
  in
  Serve.Daemon.stop overload_daemon;
  (* 4. Reorg sweep: re-analysis cost and retraction volume under seeded
     rollbacks, across reorg depth and endpoint-pool size. *)
  Printf.eprintf "reorg sweep...\n%!";
  let reorg_sweep =
    List.concat_map
      (fun depth ->
        List.map
          (fun n -> reorg_cell ~depth ~endpoints:n)
          reorg_endpoint_sweep)
      reorg_depth_sweep
  in
  (* 5. Failover microbench: cost of a flaky primary vs pool size. *)
  Printf.eprintf "failover sweep...\n%!";
  let failover = List.map failover_row failover_endpoint_sweep in
  (* 6. Tracing overhead: identical loadgen mixes with the recorder off
     and on; the throughput delta is the headline number (< 5%). *)
  Printf.eprintf "tracing overhead...\n%!";
  let off_stats, _ = tracing_row ~land_ ~addresses false in
  let on_stats, spans = tracing_row ~land_ ~addresses true in
  (* Positive = tracing costs something: throughput lost, latency added. *)
  let pct base v = if base > 0.0 then (v -. base) /. base *. 100.0 else 0.0 in
  let rps_overhead_pct =
    -.pct off_stats.Serve.Loadgen.lg_rps on_stats.Serve.Loadgen.lg_rps
  in
  let p99_overhead_pct =
    pct off_stats.Serve.Loadgen.lg_p99_ms on_stats.Serve.Loadgen.lg_p99_ms
  in
  Printf.eprintf "  overhead: rps %+.2f%%  p99 %+.2f%%\n%!" rps_overhead_pct
    p99_overhead_pct;
  let tracing =
    Json.Obj
      [
        ("clients", Json.Int tracing_clients);
        ("requests_per_client", Json.Int tracing_requests);
        ("trace_seed", Json.Int tracing_trace_seed);
        ("off", Serve.Loadgen.to_json off_stats);
        ("on", Serve.Loadgen.to_json on_stats);
        ("spans_recorded", Json.Int spans);
        ("rps_overhead_pct", Json.Float rps_overhead_pct);
        ("p99_overhead_pct", Json.Float p99_overhead_pct);
      ]
  in
  (* 7. Flight-ring record cost vs capacity. *)
  Printf.eprintf "flight ring sweep...\n%!";
  let flight = List.map flight_row flight_capacity_sweep in
  let mean_speedup =
    let total, n =
      List.fold_left
        (fun (acc, n) -> function
          | Json.Obj kvs -> (
              match List.assoc_opt "speedup" kvs with
              | Some (Json.Float s) -> (acc +. s, n + 1)
              | _ -> (acc, n))
          | _ -> (acc, n))
        (0.0, 0) incremental
    in
    if n = 0 then 0.0 else total /. float_of_int n
  in
  let json =
    Json.Obj
      [
        ("schema_version", Json.Int 4);
        ("git_rev", Json.String (git_rev ()));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ( "config",
          Json.Obj
            [
              ("total", Json.Int bench_config.Generate.total);
              ("seed", Json.Int bench_config.Generate.seed);
              ("workers", Json.Int 4);
              ("requests_per_client", Json.Int requests_per_client);
              ( "overload",
                Json.Obj
                  [
                    ("clients", Json.Int overload_clients);
                    ("requests_per_client", Json.Int overload_requests);
                    ("hostile_seed", Json.Int hostile_seed);
                    ("max_conns", Json.Int overload_max_conns);
                    ("queue_limit", Json.Int overload_queue_limit);
                    ("idle_timeout_ms", Json.Int overload_idle_ms);
                  ] );
              ( "reorg",
                Json.Obj
                  [
                    ("total", Json.Int reorg_config.Generate.total);
                    ( "depth_sweep",
                      Json.List
                        (List.map (fun d -> Json.Int d) reorg_depth_sweep) );
                    ( "endpoint_sweep",
                      Json.List
                        (List.map (fun n -> Json.Int n) reorg_endpoint_sweep)
                    );
                    ("advances", Json.Int reorg_advances);
                    ("advance_seed", Json.Int reorg_advance_seed);
                  ] );
              ( "failover",
                Json.Obj
                  [
                    ("calls", Json.Int failover_calls);
                    ("fault_rate", Json.Float failover_fault_rate);
                    ("fault_seed", Json.Int failover_fault_seed);
                  ] );
            ] );
        ("startup_seconds", Json.Float startup_s);
        ("sweep", Json.List sweep);
        ("overload", Json.List overload);
        ("incremental", Json.List incremental);
        ("incremental_speedup_mean", Json.Float mean_speedup);
        ("reorg_sweep", Json.List reorg_sweep);
        ("failover", Json.List failover);
        ("tracing", tracing);
        ("flight", Json.List flight);
      ]
  in
  Out_channel.with_open_text out_path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  Printf.eprintf "wrote %s (mean incremental speedup %.1fx)\n%!" out_path
    mean_speedup
