(* Daemon benchmark: load-generator sweeps (requests/sec and latency
   percentiles under concurrent clients) plus incremental-vs-full
   re-analysis timing over scripted chain advances.  Writes
   BENCH_serve.json.

   Usage: dune exec bench/bench_serve.exe *)

module Generate = Dataset.Generate
module Json = Report.Json

let clock = Obs.Clock.real

let time f =
  let t0 = Obs.Clock.now clock in
  let result = f () in
  (result, Obs.Clock.now clock -. t0)

(* Current git revision, read straight from .git (no subprocess). *)
let git_rev () =
  let read_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> Some (String.trim s)
    | exception Sys_error _ -> None
  in
  match read_file ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
      let ref_path = String.sub head 5 (String.length head - 5) in
      match read_file (Filename.concat ".git" ref_path) with
      | Some rev -> rev
      | None -> "unknown")
  | Some rev -> rev
  | None -> "unknown"

let out_path = "BENCH_serve.json"

let bench_config =
  { Generate.quick_config with Generate.total = 600; seed = 42 }

let client_sweep = [ 1; 2; 4; 8 ]
let requests_per_client = 150
let advances = 3

let analysis_config = Proxion.Pipeline.Config.(default |> with_batch_size 32)

let cold_report (land_ : Generate.t) =
  let t =
    Proxion.Analyzer.create ~config:analysis_config
      ~chain:land_.Generate.chain ~source:land_.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  Proxion.Analyzer.report t

let () =
  let land_ = Generate.generate bench_config in
  let config =
    Serve.Config.(default |> with_workers 4 |> with_analysis analysis_config)
  in
  let daemon, startup_s =
    time (fun () ->
        match Serve.Daemon.create ~config land_ with
        | Ok d -> d
        | Error e -> failwith ("daemon create: " ^ e))
  in
  (match Serve.Daemon.start daemon with
  | Ok () -> ()
  | Error e -> failwith ("daemon start: " ^ e));
  let port = Serve.Daemon.port daemon in
  Printf.eprintf "daemon up on port %d (%.2fs startup), sweeping...\n%!" port
    startup_s;
  let addresses =
    List.map (fun l -> l.Generate.l_address) land_.Generate.labels
  in
  (* 1. Concurrent-client throughput/latency sweep. *)
  let sweep =
    List.map
      (fun clients ->
        match
          Serve.Loadgen.run ~port ~clients ~requests:requests_per_client
            ~addresses ()
        with
        | Error e -> failwith ("loadgen: " ^ e)
        | Ok stats ->
            Printf.eprintf
              "  %d clients: %.0f req/s  p50 %.3f ms  p99 %.3f ms\n%!" clients
              stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p50_ms
              stats.Serve.Loadgen.lg_p99_ms;
            Serve.Loadgen.to_json stats)
      client_sweep
  in
  (* 2. Incremental-vs-full: apply scripted advances on the resident
     daemon and compare each increment's wall clock against a cold full
     re-analysis of the advanced chain (which also witnesses the
     byte-identity contract). *)
  let report_string r = Json.to_string (Proxion.Serialize.report_to_json r) in
  let incremental =
    List.init advances (fun i ->
        let result, inc_s = time (fun () -> Serve.Daemon.advance daemon) in
        let cold, full_s = time (fun () -> cold_report land_) in
        let warm =
          Serve.Store.report
            (Serve.Daemon.store daemon)
            ~unique_codes:(Serve.Daemon.unique_codes daemon)
        in
        let identical = report_string cold = report_string warm in
        let speedup = if inc_s > 0.0 then full_s /. inc_s else 0.0 in
        Printf.eprintf
          "  advance %d: %d dirty + %d new in %.3fs vs full %.3fs (%.1fx, \
           identical=%b)\n\
           %!"
          (i + 1) result.Serve.Daemon.adv_dirty result.Serve.Daemon.adv_new
          inc_s full_s speedup identical;
        Json.Obj
          [
            ("advance", Json.Int (i + 1));
            ("dirty_subjects", Json.Int result.Serve.Daemon.adv_dirty);
            ("new_subjects", Json.Int result.Serve.Daemon.adv_new);
            ( "store_size",
              Json.Int (Serve.Store.size (Serve.Daemon.store daemon)) );
            ("incremental_seconds", Json.Float inc_s);
            ("full_seconds", Json.Float full_s);
            ("speedup", Json.Float speedup);
            ("identical_report", Json.Bool identical);
          ])
  in
  Serve.Daemon.stop daemon;
  let mean_speedup =
    let total, n =
      List.fold_left
        (fun (acc, n) -> function
          | Json.Obj kvs -> (
              match List.assoc_opt "speedup" kvs with
              | Some (Json.Float s) -> (acc +. s, n + 1)
              | _ -> (acc, n))
          | _ -> (acc, n))
        (0.0, 0) incremental
    in
    if n = 0 then 0.0 else total /. float_of_int n
  in
  let json =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("git_rev", Json.String (git_rev ()));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ( "config",
          Json.Obj
            [
              ("total", Json.Int bench_config.Generate.total);
              ("seed", Json.Int bench_config.Generate.seed);
              ("workers", Json.Int 4);
              ("requests_per_client", Json.Int requests_per_client);
            ] );
        ("startup_seconds", Json.Float startup_s);
        ("sweep", Json.List sweep);
        ("incremental", Json.List incremental);
        ("incremental_speedup_mean", Json.Float mean_speedup);
      ]
  in
  Out_channel.with_open_text out_path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  Printf.eprintf "wrote %s (mean incremental speedup %.1fx)\n%!" out_path
    mean_speedup
