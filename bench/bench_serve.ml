(* Daemon benchmark: load-generator sweeps (requests/sec and latency
   percentiles under concurrent clients) plus incremental-vs-full
   re-analysis timing over scripted chain advances.  Writes
   BENCH_serve.json.

   Usage: dune exec bench/bench_serve.exe *)

module Generate = Dataset.Generate
module Json = Report.Json

let clock = Obs.Clock.real

let time f =
  let t0 = Obs.Clock.now clock in
  let result = f () in
  (result, Obs.Clock.now clock -. t0)

(* Current git revision, read straight from .git (no subprocess). *)
let git_rev () =
  let read_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> Some (String.trim s)
    | exception Sys_error _ -> None
  in
  match read_file ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
      let ref_path = String.sub head 5 (String.length head - 5) in
      match read_file (Filename.concat ".git" ref_path) with
      | Some rev -> rev
      | None -> "unknown")
  | Some rev -> rev
  | None -> "unknown"

let out_path = "BENCH_serve.json"

let bench_config =
  { Generate.quick_config with Generate.total = 600; seed = 42 }

let client_sweep = [ 1; 2; 4; 8 ]
let requests_per_client = 150
let advances = 3

(* Overload sweep: fixed well-behaved load, rising hostile-client count,
   against a deliberately small admission gate so shedding engages. *)
let attacker_sweep = [ 0; 2; 4; 8 ]
let overload_clients = 4
let overload_requests = 100
let hostile_seed = 1
let overload_max_conns = 8
let overload_queue_limit = 4
let overload_idle_ms = 500

let shed_reasons = [ "draining"; "max_conns"; "queue_full" ]

let shed_counts registry =
  match Obs.Metrics.find registry "proxion_serve_shed_connections_total" with
  | None -> List.map (fun r -> (r, 0.0)) shed_reasons
  | Some fam ->
      List.map
        (fun r ->
          ( r,
            Option.value ~default:0.0
              (Obs.Metrics.value ~labels:[ ("reason", r) ] registry fam) ))
        shed_reasons

let analysis_config = Proxion.Pipeline.Config.(default |> with_batch_size 32)

let cold_report (land_ : Generate.t) =
  let t =
    Proxion.Analyzer.create ~config:analysis_config
      ~chain:land_.Generate.chain ~source:land_.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  Proxion.Analyzer.report t

let () =
  let land_ = Generate.generate bench_config in
  let config =
    Serve.Config.(default |> with_workers 4 |> with_analysis analysis_config)
  in
  let daemon, startup_s =
    time (fun () ->
        match Serve.Daemon.create ~config land_ with
        | Ok d -> d
        | Error e -> failwith ("daemon create: " ^ e))
  in
  (match Serve.Daemon.start daemon with
  | Ok () -> ()
  | Error e -> failwith ("daemon start: " ^ e));
  let port = Serve.Daemon.port daemon in
  Printf.eprintf "daemon up on port %d (%.2fs startup), sweeping...\n%!" port
    startup_s;
  let addresses =
    List.map (fun l -> l.Generate.l_address) land_.Generate.labels
  in
  (* 1. Concurrent-client throughput/latency sweep. *)
  let sweep =
    List.map
      (fun clients ->
        match
          Serve.Loadgen.run ~port ~clients ~requests:requests_per_client
            ~addresses ()
        with
        | Error e -> failwith ("loadgen: " ^ e)
        | Ok stats ->
            Printf.eprintf
              "  %d clients: %.0f req/s  p50 %.3f ms  p99 %.3f ms\n%!" clients
              stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p50_ms
              stats.Serve.Loadgen.lg_p99_ms;
            Serve.Loadgen.to_json stats)
      client_sweep
  in
  (* 2. Incremental-vs-full: apply scripted advances on the resident
     daemon and compare each increment's wall clock against a cold full
     re-analysis of the advanced chain (which also witnesses the
     byte-identity contract). *)
  let report_string r = Json.to_string (Proxion.Serialize.report_to_json r) in
  let incremental =
    List.init advances (fun i ->
        let result, inc_s = time (fun () -> Serve.Daemon.advance daemon) in
        let cold, full_s = time (fun () -> cold_report land_) in
        let warm =
          Serve.Store.report
            (Serve.Daemon.store daemon)
            ~unique_codes:(Serve.Daemon.unique_codes daemon)
        in
        let identical = report_string cold = report_string warm in
        let speedup = if inc_s > 0.0 then full_s /. inc_s else 0.0 in
        Printf.eprintf
          "  advance %d: %d dirty + %d new in %.3fs vs full %.3fs (%.1fx, \
           identical=%b)\n\
           %!"
          (i + 1) result.Serve.Daemon.adv_dirty result.Serve.Daemon.adv_new
          inc_s full_s speedup identical;
        Json.Obj
          [
            ("advance", Json.Int (i + 1));
            ("dirty_subjects", Json.Int result.Serve.Daemon.adv_dirty);
            ("new_subjects", Json.Int result.Serve.Daemon.adv_new);
            ( "store_size",
              Json.Int (Serve.Store.size (Serve.Daemon.store daemon)) );
            ("incremental_seconds", Json.Float inc_s);
            ("full_seconds", Json.Float full_s);
            ("speedup", Json.Float speedup);
            ("identical_report", Json.Bool identical);
          ])
  in
  Serve.Daemon.stop daemon;
  (* 3. Overload sweep on a fresh daemon with a small admission gate:
     goodput and tail latency for well-behaved clients as hostile
     personas pile on, with the daemon's own shed counters. *)
  let overload_config =
    Serve.Config.(
      default |> with_workers 2
      |> with_max_conns overload_max_conns
      |> with_queue_limit overload_queue_limit
      |> with_idle_timeout_ms overload_idle_ms
      |> with_analysis analysis_config)
  in
  let overload_registry = Obs.Metrics.create () in
  let overload_daemon =
    match
      Serve.Daemon.create ~config:overload_config ~registry:overload_registry
        land_
    with
    | Ok d -> d
    | Error e -> failwith ("overload daemon create: " ^ e)
  in
  (match Serve.Daemon.start overload_daemon with
  | Ok () -> ()
  | Error e -> failwith ("overload daemon start: " ^ e));
  let overload_port = Serve.Daemon.port overload_daemon in
  let prev_shed = ref (shed_counts overload_registry) in
  let overload =
    List.map
      (fun attackers ->
        let stats, hostile =
          if attackers = 0 then
            match
              Serve.Loadgen.run ~port:overload_port ~clients:overload_clients
                ~requests:overload_requests ~addresses ()
            with
            | Error e -> failwith ("overload loadgen: " ^ e)
            | Ok s -> (s, None)
          else
            match
              Serve.Loadgen.run_hostile ~port:overload_port
                ~clients:overload_clients ~requests:overload_requests
                ~attackers ~seed:hostile_seed ~addresses ()
            with
            | Error e -> failwith ("hostile loadgen: " ^ e)
            | Ok (s, h) -> (s, Some h)
        in
        let now_shed = shed_counts overload_registry in
        let delta =
          List.map2
            (fun (r, now) (_, before) -> (r, now -. before))
            now_shed !prev_shed
        in
        prev_shed := now_shed;
        Printf.eprintf
          "  %d attackers: goodput %.0f req/s  p99 %.3f ms  (%d shed seen, \
           %d errors)\n\
           %!"
          attackers stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p99_ms
          stats.Serve.Loadgen.lg_shed stats.Serve.Loadgen.lg_errors;
        Json.Obj
          ([
             ("attackers", Json.Int attackers);
             ("well_behaved", Serve.Loadgen.to_json stats);
             ( "daemon_shed_connections",
               Json.Obj (List.map (fun (r, v) -> (r, Json.Float v)) delta) );
           ]
          @
          match hostile with
          | None -> []
          | Some h -> [ ("hostile", Serve.Loadgen.hostile_to_json h) ]))
      attacker_sweep
  in
  Serve.Daemon.stop overload_daemon;
  let mean_speedup =
    let total, n =
      List.fold_left
        (fun (acc, n) -> function
          | Json.Obj kvs -> (
              match List.assoc_opt "speedup" kvs with
              | Some (Json.Float s) -> (acc +. s, n + 1)
              | _ -> (acc, n))
          | _ -> (acc, n))
        (0.0, 0) incremental
    in
    if n = 0 then 0.0 else total /. float_of_int n
  in
  let json =
    Json.Obj
      [
        ("schema_version", Json.Int 2);
        ("git_rev", Json.String (git_rev ()));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ( "config",
          Json.Obj
            [
              ("total", Json.Int bench_config.Generate.total);
              ("seed", Json.Int bench_config.Generate.seed);
              ("workers", Json.Int 4);
              ("requests_per_client", Json.Int requests_per_client);
              ( "overload",
                Json.Obj
                  [
                    ("clients", Json.Int overload_clients);
                    ("requests_per_client", Json.Int overload_requests);
                    ("hostile_seed", Json.Int hostile_seed);
                    ("max_conns", Json.Int overload_max_conns);
                    ("queue_limit", Json.Int overload_queue_limit);
                    ("idle_timeout_ms", Json.Int overload_idle_ms);
                  ] );
            ] );
        ("startup_seconds", Json.Float startup_s);
        ("sweep", Json.List sweep);
        ("overload", Json.List overload);
        ("incremental", Json.List incremental);
        ("incremental_speedup_mean", Json.Float mean_speedup);
      ]
  in
  Out_channel.with_open_text out_path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  Printf.eprintf "wrote %s (mean incremental speedup %.1fx)\n%!" out_path
    mean_speedup
