(* Benchmark and regeneration harness.

   Two halves:

   1. Bechamel micro-benchmarks — one Test.make per paper table/figure,
      measuring the computational kernel that experiment leans on, plus
      substrate benches (keccak, U256, EVM interpretation, disassembly) and
      the DESIGN.md ablations.

   2. Regeneration — prints every table and figure of the paper's
      evaluation from a freshly generated landscape / corpus.

   Usage:
     dune exec bench/main.exe                 # micro + all regenerations
     dune exec bench/main.exe -- micro        # only micro-benchmarks
     dune exec bench/main.exe -- table1|table2|table3|table4
     dune exec bench/main.exe -- fig2|fig4|fig5|fig6
     dune exec bench/main.exe -- perf|effectiveness|ablation|engine
     dune exec bench/main.exe -- landscape    # all landscape outputs *)

module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen

(* Every wall-clock figure below reads this clock; swapping in a virtual
   clock makes the whole harness time-deterministic. *)
let clock = Obs.Clock.real

let time f =
  let t0 = Obs.Clock.now clock in
  let result = f () in
  (result, Obs.Clock.now clock -. t0)

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                      *)
(* ------------------------------------------------------------------ *)

type fixtures = {
  fx_land : Dataset.Generate.t;
  fx_report : Proxion.Pipeline.report;
  fx_host : Evm.Host.t;
  fx_slot_proxy : Evm.Address.t;  (* a slot proxy with upgrade history *)
  fx_proxy_addresses : Evm.Address.t list;
  fx_honeypot_pair : string * string;  (* bytecode pair w/ function collision *)
  fx_audius_pair : string * string;  (* bytecode pair w/ storage collision *)
  fx_erc20 : Evm.Address.t;
  fx_erc20_host : Evm.Host.t;
}

let bench_config =
  { Dataset.Generate.quick_config with Dataset.Generate.total = 1_200 }

let build_fixtures () =
  let land_ = Dataset.Generate.generate bench_config in
  let chain = land_.Dataset.Generate.chain in
  let report =
    Proxion.Pipeline.analyze ~chain ~source:land_.Dataset.Generate.source_of ()
  in
  let host = Chain.host_at_head chain in
  let slot_proxy =
    match
      List.find_opt
        (fun l ->
          l.Dataset.Generate.l_kind = Dataset.Generate.K_slot_proxy
          || l.Dataset.Generate.l_kind = Dataset.Generate.K_audius_proxy)
        land_.Dataset.Generate.labels
    with
    | Some l -> l.Dataset.Generate.l_address
    | None -> failwith "bench fixtures: no slot proxy generated"
  in
  let proxies =
    List.filter_map
      (fun r ->
        if Proxion.Pipeline.is_proxy_report r then
          Some r.Proxion.Pipeline.r_address
        else None)
      report.Proxion.Pipeline.contracts
  in
  (* A standalone ERC20-ish contract for EVM-interpretation benches. *)
  let erc20_host = Evm.Host.in_memory () in
  let erc20 = Evm.Address.of_hex "0x00000000000000000000000000000000000e4c20" in
  Evm.Host.with_code erc20_host erc20 (Codegen.runtime (Patterns.erc20ish_logic ()));
  {
    fx_land = land_;
    fx_report = report;
    fx_host = host;
    fx_slot_proxy = slot_proxy;
    fx_proxy_addresses = proxies;
    fx_honeypot_pair =
      ( Codegen.runtime (Patterns.honeypot_proxy ()),
        Codegen.runtime (Patterns.honeypot_logic ()) );
    fx_audius_pair =
      ( Codegen.runtime (Patterns.audius_proxy ()),
        Codegen.runtime (Patterns.audius_logic ()) );
    fx_erc20 = erc20;
    fx_erc20_host = erc20_host;
  }

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let micro_tests fx =
  let open Bechamel in
  let caller = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce" in
  let mint_input =
    Evm.Abi.encode_call ~signature:"mint(uint256)" [ Evm.Abi.Uint (U256.of_int 5) ]
  in
  let hp_proxy, hp_logic = fx.fx_honeypot_pair in
  let au_proxy, au_logic = fx.fx_audius_pair in
  let sample_word = U256.of_hex "0xdeadbeefcafebabe0123456789abcdef" in
  let eip1167 =
    Patterns.eip1167_runtime
      (Evm.Address.of_hex "0x1234567890123456789012345678901234567890")
  in
  [
    (* Substrate kernels. *)
    Test.make ~name:"substrate/keccak256-136B"
      (Staged.stage (fun () -> Keccak.digest (String.make 136 'x')));
    Test.make ~name:"substrate/u256-mul"
      (Staged.stage (fun () -> U256.mul sample_word sample_word));
    Test.make ~name:"substrate/u256-divmod"
      (Staged.stage (fun () -> U256.divmod U256.max_value sample_word));
    Test.make ~name:"substrate/disassemble-erc20"
      (Staged.stage (fun () -> Evm.Disasm.disassemble hp_proxy));
    Test.make ~name:"substrate/evm-mint-tx"
      (Staged.stage (fun () ->
           Evm.Interp.execute fx.fx_erc20_host
             (Evm.Interp.make_call ~caller ~target:fx.fx_erc20 ~input:mint_input ())));
    (* One kernel per table/figure. *)
    Test.make ~name:"table1/emulation-probe-eip1167"
      (Staged.stage (fun () -> Proxion.Proxy_detect.detect_code eip1167));
    Test.make ~name:"table2/func-collision-bytecode-pair"
      (Staged.stage (fun () ->
           Proxion.Func_collision.detect
             ~proxy:(Proxion.Func_collision.Bytecode hp_proxy)
             ~logic:(Proxion.Func_collision.Bytecode hp_logic)));
    Test.make ~name:"table3/storage-collision-bytecode-pair"
      (Staged.stage (fun () ->
           Proxion.Storage_collision.detect
             ~proxy:(Proxion.Storage_collision.Bytecode au_proxy)
             ~logic:(Proxion.Storage_collision.Bytecode au_logic)));
    Test.make ~name:"table4/standard-classification"
      (Staged.stage (fun () ->
           Proxion.Standard_classify.classify ~code:eip1167 Proxion.Proxy_detect.Hardcoded));
    Test.make ~name:"fig2/availability-aggregation"
      (Staged.stage (fun () ->
           List.length
             (List.filter
                (fun l -> l.Dataset.Generate.l_has_source)
                fx.fx_land.Dataset.Generate.labels)));
    Test.make ~name:"fig4/pair-counting"
      (Staged.stage (fun () ->
           List.fold_left
             (fun acc r -> acc + List.length r.Proxion.Pipeline.r_pairs)
             0 fx.fx_report.Proxion.Pipeline.contracts));
    Test.make ~name:"fig5/dedup-distribution"
      (Staged.stage (fun () ->
           Proxion.Dedup.duplicate_distribution
             ~code_of:(Chain.code_at fx.fx_land.Dataset.Generate.chain)
             fx.fx_proxy_addresses));
    Test.make ~name:"fig6/algorithm1-resolve"
      (Staged.stage (fun () ->
           Proxion.Logic_resolve.resolve_slot fx.fx_land.Dataset.Generate.chain
             fx.fx_slot_proxy ~slot:U256.one));
    Test.make ~name:"perf/proxy-probe-slot-proxy"
      (Staged.stage (fun () -> Proxion.Proxy_detect.detect ~host:fx.fx_host fx.fx_slot_proxy));
    (* Ablations (DESIGN.md). *)
    Test.make ~name:"ablation/naive-push4-extraction"
      (Staged.stage (fun () -> Proxion.Selector_extract.naive_push4 hp_proxy));
    Test.make ~name:"ablation/dispatcher-extraction"
      (Staged.stage (fun () -> Proxion.Selector_extract.dispatcher_selectors hp_proxy));
  ]

let run_micro fx =
  let open Bechamel in
  let tests = Test.make_grouped ~name:"proxion" (micro_tests fx) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Report.print_table ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
    ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "n/a"
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       rows)

(* ------------------------------------------------------------------ *)
(* Ablation studies (DESIGN.md)                                        *)
(* ------------------------------------------------------------------ *)

let run_ablation fx =
  let chain = fx.fx_land.Dataset.Generate.chain in
  (* 1. Algorithm 1 vs naive scan: API calls. *)
  let slot_proxies =
    List.filter_map
      (fun r ->
        match r.Proxion.Pipeline.r_detection.Proxion.Proxy_detect.verdict with
        | Proxion.Proxy_detect.Proxy
            { source = Proxion.Proxy_detect.Storage_slot slot; _ } ->
            Some (r.Proxion.Pipeline.r_address, slot)
        | _ -> None)
      fx.fx_report.Proxion.Pipeline.contracts
  in
  let total_calls =
    List.fold_left
      (fun acc (addr, slot) ->
        acc
        + (Proxion.Logic_resolve.resolve_slot chain addr ~slot)
            .Proxion.Logic_resolve.api_calls)
      0 slot_proxies
  in
  let n = max 1 (List.length slot_proxies) in
  (* 2. Naive PUSH4 vs dispatcher extraction: false selectors. *)
  let hp_proxy, _ = fx.fx_honeypot_pair in
  let naive = Proxion.Selector_extract.naive_push4 hp_proxy in
  let dispatch = Proxion.Selector_extract.dispatcher_selectors hp_proxy in
  (* 3. Dedup on/off wall-clock. *)
  let time f = snd (time f) in
  let source = fx.fx_land.Dataset.Generate.source_of in
  let with_dedup =
    time (fun () -> ignore (Proxion.Pipeline.analyze ~chain ~source ()))
  in
  let no_dedup =
    Proxion.Pipeline.Config.with_dedup false Proxion.Pipeline.Config.default
  in
  let without_dedup =
    time (fun () ->
        Proxion.Pipeline.analyze ~config:no_dedup ~chain ~source ())
  in
  (* 4. Crafted vs random probe calldata: detection when the random
     selector happens to hit a real function.  We simulate by probing the
     honeypot proxy with its own colliding selector: the dispatcher
     captures the call and no forwarding is observed. *)
  let hp_addr = Evm.Address.of_hex "0x00000000000000000000000000000000000abcde" in
  let hp_host = Evm.Host.in_memory () in
  Evm.Host.with_code hp_host hp_addr hp_proxy;
  let crafted = Proxion.Proxy_detect.detect ~host:hp_host hp_addr in
  let collide_input = Keccak.selector "free_ether_withdrawal()" ^ String.make 32 '\000' in
  let forwarded_with_colliding_probe =
    let hit = ref false in
    let tracer =
      {
        Evm.Interp.no_tracer with
        Evm.Interp.on_call =
          (fun ev ->
            if ev.Evm.Interp.kind = Evm.Interp.Delegatecall && ev.Evm.Interp.input = collide_input
            then hit := true);
      }
    in
    let _ =
      Evm.Interp.execute ~tracer hp_host
        (Evm.Interp.make_call
           ~caller:(Evm.Address.of_hex "0x0000000000000000000000000000000000001234")
           ~target:hp_addr ~input:collide_input ())
    in
    !hit
  in
  (* Algorithm 1 scaling: API calls grow logarithmically with chain height
     while the naive scan grows linearly. *)
  let algo1_at_height height =
    let c = Chain.create () in
    let proxy = Chain.install_contract c ~runtime:"\x00" () in
    let step = max 1 (height / 4) in
    List.iteri
      (fun i logic ->
        Chain.advance_blocks c (step * i);
        Chain.set_storage_direct c proxy U256.zero (U256.of_int logic))
      [ 0x100; 0x200; 0x300 ];
    Chain.advance_blocks c (height - Chain.height c);
    let r = Proxion.Logic_resolve.resolve_slot c proxy ~slot:U256.zero in
    r.Proxion.Logic_resolve.api_calls
  in
  let scaling =
    List.map
      (fun h -> Printf.sprintf "%d blocks: %d calls" h (algo1_at_height h))
      [ 1_000; 100_000; 15_000_000 ]
  in
  Report.print_table ~title:"Ablations (DESIGN.md design choices)"
    ~header:[ "Ablation"; "Result" ]
    [
      [
        "Algorithm 1 API calls (avg per slot proxy)";
        Printf.sprintf "%.1f vs naive %d (full scan)"
          (float_of_int total_calls /. float_of_int n)
          (Chain.height chain);
      ];
      [ "Algorithm 1 scaling (3 upgrades)"; String.concat "; " scaling ];
      [
        "naive PUSH4 selector harvest";
        Printf.sprintf "%d candidates (incl. embedded constants)" (List.length naive);
      ];
      [
        "dispatcher-pattern extraction";
        Printf.sprintf "%d selectors (dispatcher-backed only)" (List.length dispatch);
      ];
      [
        "pipeline wall-clock with dedup";
        Printf.sprintf "%.3f s" with_dedup;
      ];
      [
        "pipeline wall-clock without dedup";
        Printf.sprintf "%.3f s (%.1fx slower)" without_dedup
          (without_dedup /. Float.max 1e-9 with_dedup);
      ];
      [
        "crafted probe detects honeypot proxy";
        (match crafted.Proxion.Proxy_detect.verdict with
        | Proxion.Proxy_detect.Proxy _ -> "yes"
        | _ -> "NO");
      ];
      [
        "colliding (non-crafted) probe forwards";
        (if forwarded_with_colliding_probe then "yes (would still detect)"
         else "no (captured by dispatcher: detection would miss)");
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Engine benchmarks: scheduler overhead, batch-size sweep, checkpoint  *)
(* ------------------------------------------------------------------ *)

(* Current git revision, read straight from .git (no subprocess). *)
let git_rev () =
  let read_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> Some (String.trim s)
    | exception Sys_error _ -> None
  in
  match read_file ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
      let ref_path = String.sub head 5 (String.length head - 5) in
      match read_file (Filename.concat ".git" ref_path) with
      | Some rev -> rev
      | None -> "unknown")
  | Some rev -> rev
  | None -> "unknown"

let bench_engine_json_path = "BENCH_engine.json"

(* Streamed-RSS probe.  VmHWM is a process-lifetime high-water mark, so
   each total gets its own subprocess: the bench re-execs itself with
   BENCH_STREAM_TOTAL set, the child runs a full streamed scan (open_stream
   / analyze / evict, same loop as the CLI's --stream path) and prints one
   machine-readable line.  The bounded-RSS claim is the ratio between the
   totals' peaks staying near 1. *)

let run_stream_child total =
  let config =
    { Dataset.Generate.quick_config with Dataset.Generate.total }
  in
  let stream = Dataset.Generate.open_stream config in
  let chain = Dataset.Generate.stream_chain stream in
  let source = Dataset.Generate.stream_source_of stream in
  let analyzer = Proxion.Analyzer.create ~chain ~source () in
  let t0 = Obs.Clock.now clock in
  let rec loop () =
    match Dataset.Generate.next_batch stream ~batch:4096 with
    | None -> ()
    | Some specs ->
        Proxion.Analyzer.submit analyzer
          (Array.to_list
             (Array.map
                (fun sp ->
                  sp.Dataset.Generate.sp_label.Dataset.Generate.l_address)
                specs));
        Proxion.Analyzer.refresh_head analyzer;
        Proxion.Analyzer.run analyzer;
        ignore (Proxion.Analyzer.drain_results analyzer);
        Array.iter
          (fun sp ->
            if not sp.Dataset.Generate.sp_pinned then
              Dataset.Generate.evict stream sp)
          specs;
        loop ()
  in
  loop ();
  Chain.compact chain;
  let elapsed = Obs.Clock.now clock -. t0 in
  let rss =
    Option.value ~default:(-1) (Experiments.Stream_scan.peak_rss_kb ())
  in
  Printf.printf "total=%d contracts=%d rss_kb=%d elapsed_s=%.3f\n" total
    (Dataset.Generate.stream_emitted stream)
    rss elapsed

type stream_row = {
  sr_total : int;
  sr_contracts : int;
  sr_rss_kb : int;
  sr_elapsed : float;
}

let stream_rss_rows () =
  let totals =
    [ 20_000; 100_000 ]
    @ (if Sys.getenv_opt "BENCH_STREAM_M1" <> None then [ 1_000_000 ] else [])
    @
    (* The full-mainnet soak (36M contracts, hours of wall-clock) only on
       explicit request. *)
    if Sys.getenv_opt "BENCH_STREAM_SOAK" <> None then [ 36_000_000 ] else []
  in
  List.filter_map
    (fun total ->
      Unix.putenv "BENCH_STREAM_TOTAL" (string_of_int total);
      let ic =
        Unix.open_process_args_in Sys.executable_name
          [| Sys.executable_name |]
      in
      let line = try Some (input_line ic) with End_of_file -> None in
      let status = Unix.close_process_in ic in
      Unix.putenv "BENCH_STREAM_TOTAL" "";
      match (line, status) with
      | Some line, Unix.WEXITED 0 -> (
          try
            Scanf.sscanf line "total=%d contracts=%d rss_kb=%d elapsed_s=%f"
              (fun sr_total sr_contracts sr_rss_kb sr_elapsed ->
                Some { sr_total; sr_contracts; sr_rss_kb; sr_elapsed })
          with Scanf.Scan_failure _ | Failure _ -> None)
      | _ -> None)
    totals

let run_engine fx =
  let chain = fx.fx_land.Dataset.Generate.chain in
  let source = fx.fx_land.Dataset.Generate.source_of in
  let analyze_with ?(domains = 1) batch_size =
    Chain.reset_api_call_count chain;
    let config =
      Proxion.Pipeline.Config.(
        default |> with_batch_size batch_size |> with_domains domains)
    in
    let t = Proxion.Analyzer.create ~config ~chain ~source () in
    Proxion.Analyzer.submit_all t;
    Proxion.Analyzer.run t;
    t
  in
  let sweep =
    List.map
      (fun b ->
        let t, elapsed = time (fun () -> analyze_with b) in
        Printf.sprintf "%d: %.3fs (%d batches)" b elapsed
          (Engine.batches_done (Proxion.Analyzer.engine t)))
      [ 8; 32; 128 ]
  in
  (* Event-delivery overhead: same run with a counting subscriber. *)
  let events = ref 0 in
  let _, with_events =
    time (fun () ->
        Chain.reset_api_call_count chain;
        let t = Proxion.Analyzer.create ~chain ~source () in
        Proxion.Analyzer.subscribe t (fun _ -> incr events);
        Proxion.Analyzer.submit_all t;
        Proxion.Analyzer.run t)
  in
  (* Checkpoint round-trip on a half-finished run. *)
  let half = Proxion.Analyzer.create ~chain ~source () in
  Proxion.Analyzer.submit_all half;
  Proxion.Analyzer.run ~max_batches:(Proxion.Analyzer.pending half / 64) half;
  let json, ck_elapsed = time (fun () -> Proxion.Analyzer.checkpoint half) in
  let text = Report.Json.to_string json in
  let restored, restore_elapsed =
    time (fun () -> Proxion.Analyzer.restore ~chain ~source json)
  in
  (* Journaled recovery replay: the crash-safety path end to end.  Commit
     a checkpoint per batch the way the CLI does, tear the tail the way a
     kill mid-write would, then measure recovery (journal scan +
     truncation) and replay (parse + restore) separately. *)
  let journal_path = Filename.temp_file "proxion_bench" ".jrnl" in
  Sys.remove journal_path;
  let journal_stats =
    let open Resilience in
    match Journal.open_journal ~fsync:false journal_path with
    | Error e -> Error e
    | Ok (j, _) -> (
        Chain.reset_api_call_count chain;
        let t = Proxion.Analyzer.create ~chain ~source () in
        Proxion.Analyzer.subscribe t (function
          | Engine.Batch_finished _ ->
              ignore
                (Journal.checkpoint j
                   (Report.Json.to_string (Proxion.Analyzer.checkpoint t)))
          | _ -> ());
        Proxion.Analyzer.submit_all t;
        Proxion.Analyzer.run ~max_batches:8 t;
        Journal.close j;
        Out_channel.with_open_gen
          [ Open_append; Open_binary ]
          0o644 journal_path
          (fun oc -> Out_channel.output_string oc "R\xff\xff\xff\xfftorn");
        let journal_bytes = (Unix.stat journal_path).Unix.st_size in
        let recovered, open_elapsed =
          time (fun () -> Journal.open_journal ~fsync:false journal_path)
        in
        match recovered with
        | Error e -> Error e
        | Ok (j2, r) -> (
            Journal.close j2;
            let replay, replay_elapsed =
              time (fun () ->
                  match r.Journal.rec_state with
                  | None -> Error "empty journal"
                  | Some s -> (
                      match Report.Json.parse s with
                      | Error e -> Error e
                      | Ok ck ->
                          Result.map ignore
                            (Proxion.Analyzer.restore ~chain ~source ck)))
            in
            match replay with
            | Error e -> Error e
            | Ok () ->
                Ok
                  ( journal_bytes,
                    r.Journal.rec_committed,
                    r.Journal.rec_dropped_bytes,
                    open_elapsed,
                    replay_elapsed )))
  in
  (try Sys.remove journal_path with Sys_error _ -> ());
  (* Domain-parallel sweep: one landscape fanned across 1/2/4/8 worker
     domains; the report must stay byte-identical to the sequential run.
     The sweep runs over a dedicated 10k-contract landscape rather than
     the small shared fixture: worker domains are spawned once per run,
     and that fixed cost (plus cold per-domain selector/jumpdest memos)
     would dominate a ~50 ms run and misreport scheduler overhead that
     amortizes to nothing at realistic scan sizes.  The keccak selector
     memo is reset before the reference run so its hit rate covers
     exactly the sweep's analyses. *)
  let report_string t =
    Report.Json.to_string
      (Proxion.Serialize.report_to_json (Proxion.Analyzer.report t))
  in
  let sweep_land =
    Dataset.Generate.generate
      { Dataset.Generate.quick_config with Dataset.Generate.total = 10_000 }
  in
  (* Batch 128 for the sweep: each batch barrier wakes the parked helpers
     and collects their done-signals, which on an oversubscribed core
     costs a context-switch round trip per helper.  128-contract batches
     amortize that fixed cost the way a real scan would; batch 32 spends
     ~0.6 ms/barrier x 312 barriers on wake-ups alone at DOMAINS=4. *)
  let analyze_domains d =
    let chain = sweep_land.Dataset.Generate.chain in
    Chain.reset_api_call_count chain;
    let config =
      Proxion.Pipeline.Config.(default |> with_batch_size 128 |> with_domains d)
    in
    let t =
      Proxion.Analyzer.create ~config ~chain
        ~source:sweep_land.Dataset.Generate.source_of ()
    in
    Proxion.Analyzer.submit_all t;
    Proxion.Analyzer.run t;
    t
  in
  Keccak.Memo.reset ();
  let domain_runs =
    List.map
      (fun d ->
        let t, elapsed = time (fun () -> analyze_domains d) in
        (d, t, elapsed))
      [ 1; 2; 4; 8 ]
  in
  let memo = Keccak.Memo.stats () in
  let base_elapsed, base_report =
    match domain_runs with
    | (1, t, elapsed) :: _ -> (elapsed, report_string t)
    | _ -> assert false
  in
  let processed =
    match domain_runs with
    | (_, t, _) :: _ ->
        List.length (Proxion.Analyzer.report t).Proxion.Pipeline.contracts
    | [] -> 0
  in
  let domain_rows =
    List.map
      (fun (d, t, elapsed) ->
        let identical = d = 1 || String.equal (report_string t) base_report in
        let cps = float_of_int processed /. Float.max 1e-9 elapsed in
        let speedup = base_elapsed /. Float.max 1e-9 elapsed in
        (d, t, elapsed, cps, speedup, identical))
      domain_runs
  in
  let domain_summary =
    String.concat "; "
      (List.map
         (fun (d, _, elapsed, cps, speedup, identical) ->
           Printf.sprintf "%d: %.3fs (%.0f c/s, %.2fx%s)" d elapsed cps speedup
             (if identical then "" else ", REPORT DIFFERS"))
         domain_rows)
  in
  let memo_total = memo.Keccak.Memo.hits + memo.Keccak.Memo.misses in
  let memo_rate =
    if memo_total = 0 then 0.0
    else float_of_int memo.Keccak.Memo.hits /. float_of_int memo_total
  in
  (* Allocation audit: GC word deltas across one full sequential analysis.
     The jumpdest-table memo and the scheduler's slot buffers show up here
     as fewer minor words per contract. *)
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let gc_run, fixture_elapsed = time (fun () -> analyze_with 32) in
  let g1 = Gc.quick_stat () in
  let gc_minor = g1.Gc.minor_words -. g0.Gc.minor_words in
  let gc_major = g1.Gc.major_words -. g0.Gc.major_words in
  let gc_promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words in
  (* Fixture-landscape baseline: the resilience sweep below runs over the
     shared fixture, so its identity check and overhead ratio must be
     anchored here, not on the (larger) domain-sweep landscape. *)
  let fixture_report = report_string gc_run in
  let fixture_processed =
    List.length (Proxion.Analyzer.report gc_run).Proxion.Pipeline.contracts
  in
  let gc_minor_per_contract =
    gc_minor /. float_of_int (max 1 fixture_processed)
  in
  (* Resilience sweep: the same landscape under seeded fault injection.
     Every run must stay report-identical to the fault-free baseline
     (transients are retried on the virtual clock), so what this measures
     is the pure scheduling overhead of the retry/breaker machinery plus
     how the retry volume scales with the fault rate. *)
  let resilience_runs =
    List.map
      (fun fault_rate ->
        let retries = ref 0 and opens = ref 0 and closes = ref 0 in
        let resilience =
          Resilience.Transport.config
            ~plan:(Resilience.Fault_plan.spec ~seed:1 ~fault_rate ())
            ()
        in
        let t, elapsed =
          time (fun () ->
              Chain.reset_api_call_count chain;
              let config =
                Proxion.Pipeline.Config.(default |> with_batch_size 32)
              in
              let t =
                Proxion.Analyzer.create ~config ~resilience ~chain ~source ()
              in
              Proxion.Analyzer.subscribe t (fun ev ->
                  match ev with
                  | Engine.Retry_attempted _ -> incr retries
                  | Engine.Circuit_opened _ -> incr opens
                  | Engine.Circuit_closed _ -> incr closes
                  | _ -> ());
              Proxion.Analyzer.submit_all t;
              Proxion.Analyzer.run t;
              t)
        in
        let identical = String.equal (report_string t) fixture_report in
        let dead = List.length (Proxion.Analyzer.skipped t) in
        (fault_rate, elapsed, !retries, !opens, !closes, dead, identical))
      [ 0.0; 0.02; 0.08 ]
  in
  let resilience_summary =
    String.concat "; "
      (List.map
         (fun (rate, elapsed, retries, opens, _, dead, identical) ->
           Printf.sprintf "%.0f%%: %.3fs, %d retries, %d trips%s%s"
             (100.0 *. rate) elapsed retries opens
             (if dead > 0 then Printf.sprintf ", %d dead" dead else "")
             (if identical then "" else ", REPORT DIFFERS"))
         resilience_runs)
  in
  (* Telemetry overhead + per-stage latency percentiles (schema 4): the
     same landscape bare, with the always-on metrics registry, and with
     the full span trace on top (worker-lane shards and all); then the
     stage-latency distributions read back out of the registry
     histograms.  Best-of-7 per interleaved configuration — single runs of a
     workload carry several percent of scheduler noise. *)
  let instrumented_run ~with_trace () =
    Chain.reset_api_call_count chain;
    let registry = Obs.Metrics.create () in
    let trace = if with_trace then Some (Obs.Trace.create ~clock ()) else None in
    let config = Proxion.Pipeline.Config.(default |> with_batch_size 32) in
    let t = Proxion.Analyzer.create ~config ~chain ~source () in
    Proxion.Analyzer.instrument ?trace registry t;
    Proxion.Analyzer.submit_all t;
    Proxion.Analyzer.run t;
    (t, registry, trace)
  in
  (* Interleave the three configurations within each rep so machine
     drift (frequency scaling, background load) biases them equally. *)
  let plain_best = ref infinity
  and metrics_best = ref infinity
  and inst_best = ref infinity
  and last_inst = ref None in
  for _ = 1 to 7 do
    let _, dt = time (fun () -> analyze_with 32) in
    if dt < !plain_best then plain_best := dt;
    let _, dt = time (instrumented_run ~with_trace:false) in
    if dt < !metrics_best then metrics_best := dt;
    let v, dt = time (instrumented_run ~with_trace:true) in
    if dt < !inst_best then inst_best := dt;
    last_inst := Some v
  done;
  let plain_elapsed = !plain_best
  and metrics_elapsed = !metrics_best
  and inst_elapsed = !inst_best in
  let inst_t, registry, trace = Option.get !last_inst in
  let trace = Option.get trace in
  let metrics_overhead = metrics_elapsed /. Float.max 1e-9 plain_elapsed in
  let telemetry_overhead = inst_elapsed /. Float.max 1e-9 plain_elapsed in
  let stage_latency =
    match Obs.Metrics.find registry "proxion_stage_seconds" with
    | None -> []
    | Some fam ->
        List.filter_map
          (fun (stage, _, _) ->
            let name = Engine.stage_name stage in
            Option.map
              (fun s -> (name, s))
              (Obs.Metrics.summarize ~labels:[ ("stage", name) ] registry fam))
          (Engine.stage_totals (Proxion.Analyzer.engine inst_t))
  in
  (* Streamed bounded-RSS rows (subprocess per total; see above). *)
  let stream_rows = stream_rss_rows () in
  let stream_summary =
    if stream_rows = [] then "n/a (subprocess probe failed)"
    else
      String.concat "; "
        (List.map
           (fun r ->
             Printf.sprintf "%d: %.1f MiB, %.1fs" r.sr_total
               (float_of_int r.sr_rss_kb /. 1024.0)
               r.sr_elapsed)
           stream_rows)
  in
  (* Machine-readable trajectory artifact. *)
  let stage_json t =
    Report.Json.List
      (List.map
         (fun (stage, runs, tm) ->
           Report.Json.Obj
             [
               ("stage", Report.Json.String (Engine.stage_name stage));
               ("runs", Report.Json.Int runs);
               ("elapsed_s", Report.Json.Float tm.Engine.t_elapsed);
               ("api_calls", Report.Json.Int tm.Engine.t_api_calls);
               ("steps", Report.Json.Int tm.Engine.t_steps);
               ("retries", Report.Json.Int tm.Engine.t_retries);
             ])
         (Engine.stage_totals (Proxion.Analyzer.engine t)))
  in
  let cores = Domain.recommended_domain_count () in
  let bench_json =
    Report.Json.Obj
      [
        ("schema_version", Report.Json.Int 5);
        ("git_rev", Report.Json.String (git_rev ()));
        ("cores", Report.Json.Int cores);
        ( "config",
          Report.Json.Obj
            [
              ( "total",
                Report.Json.Int bench_config.Dataset.Generate.total );
              ("seed", Report.Json.Int bench_config.Dataset.Generate.seed);
              ("batch_size", Report.Json.Int 32);
            ] );
        ("contracts_processed", Report.Json.Int fixture_processed);
        ( "sweep_config",
          Report.Json.Obj
            [
              ("total", Report.Json.Int 10_000);
              ("batch_size", Report.Json.Int 128);
              ("contracts_processed", Report.Json.Int processed);
            ] );
        ( "oversubscription_note",
          Report.Json.String
            "Rows with domains > cores measure the multi-domain runtime's \
             stop-the-world rendezvous cost on a shared core, not scheduler \
             overhead: per-stage step and API-call counts are identical \
             across all rows (work is conserved), and the gap is unchanged \
             when helpers are parked without being dispatched any work. \
             Speedup is only meaningful where cores >= domains." );
        ( "sweep",
          Report.Json.List
            (List.map
               (fun (d, t, elapsed, cps, speedup, identical) ->
                 Report.Json.Obj
                   [
                     ("domains", Report.Json.Int d);
                     ("elapsed_s", Report.Json.Float elapsed);
                     ("contracts_per_sec", Report.Json.Float cps);
                     ("speedup_vs_1", Report.Json.Float speedup);
                     (* Honesty flag: with more worker domains than cores
                        the row measures oversubscription overhead, not
                        scaling — do not read speedup off such rows. *)
                     ("oversubscribed", Report.Json.Bool (d > cores));
                     ("identical_report", Report.Json.Bool identical);
                     ("stages", stage_json t);
                   ])
               domain_rows) );
        ( "keccak_memo",
          Report.Json.Obj
            [
              ("hits", Report.Json.Int memo.Keccak.Memo.hits);
              ("misses", Report.Json.Int memo.Keccak.Memo.misses);
              ("hit_rate", Report.Json.Float memo_rate);
            ] );
        ( "resilience",
          Report.Json.List
            (List.map
               (fun (rate, elapsed, retries, opens, closes, dead, identical) ->
                 Report.Json.Obj
                   [
                     ("fault_rate", Report.Json.Float rate);
                     ("elapsed_s", Report.Json.Float elapsed);
                     ( "overhead_vs_baseline",
                       Report.Json.Float
                         (elapsed /. Float.max 1e-9 fixture_elapsed) );
                     ("retries", Report.Json.Int retries);
                     ("breaker_opens", Report.Json.Int opens);
                     ("breaker_closes", Report.Json.Int closes);
                     ("dead_letters", Report.Json.Int dead);
                     ("identical_report", Report.Json.Bool identical);
                   ])
               resilience_runs) );
        ( "telemetry",
          Report.Json.Obj
            [
              ("uninstrumented_s", Report.Json.Float plain_elapsed);
              ("metrics_s", Report.Json.Float metrics_elapsed);
              ("instrumented_s", Report.Json.Float inst_elapsed);
              ("metrics_overhead_ratio", Report.Json.Float metrics_overhead);
              ("overhead_ratio", Report.Json.Float telemetry_overhead);
              ("trace_events", Report.Json.Int (Obs.Trace.count trace));
              ( "stage_latency",
                Report.Json.List
                  (List.map
                     (fun (name, s) ->
                       Report.Json.Obj
                         [
                           ("stage", Report.Json.String name);
                           ("count", Report.Json.Int s.Obs.Metrics.s_count);
                           ("p50_s", Report.Json.Float s.Obs.Metrics.s_p50);
                           ("p90_s", Report.Json.Float s.Obs.Metrics.s_p90);
                           ("p99_s", Report.Json.Float s.Obs.Metrics.s_p99);
                         ])
                     stage_latency) );
            ] );
        ( "gc",
          Report.Json.Obj
            [
              ("minor_words_per_run", Report.Json.Float gc_minor);
              ("major_words_per_run", Report.Json.Float gc_major);
              ("promoted_words_per_run", Report.Json.Float gc_promoted);
              ( "minor_words_per_contract",
                Report.Json.Float gc_minor_per_contract );
              ("top_heap_words", Report.Json.Int g1.Gc.top_heap_words);
            ] );
        ( "stream_rss",
          Report.Json.List
            (List.map
               (fun r ->
                 Report.Json.Obj
                   [
                     ("total", Report.Json.Int r.sr_total);
                     ("contracts", Report.Json.Int r.sr_contracts);
                     ("peak_rss_kb", Report.Json.Int r.sr_rss_kb);
                     ("elapsed_s", Report.Json.Float r.sr_elapsed);
                   ])
               stream_rows) );
        ( "recovery",
          match journal_stats with
          | Error e -> Report.Json.Obj [ ("error", Report.Json.String e) ]
          | Ok (bytes, committed, dropped, open_s, replay_s) ->
              Report.Json.Obj
                [
                  ("journal_bytes", Report.Json.Int bytes);
                  ("committed_frames", Report.Json.Int committed);
                  ("torn_bytes_dropped", Report.Json.Int dropped);
                  ("recovery_open_s", Report.Json.Float open_s);
                  ("replay_restore_s", Report.Json.Float replay_s);
                ] );
      ]
  in
  Out_channel.with_open_text bench_engine_json_path (fun oc ->
      Out_channel.output_string oc
        (Report.Json.to_string ~pretty:true bench_json);
      Out_channel.output_char oc '\n');
  let t = analyze_with 32 in
  Report.print_table ~title:"Engine: staged scheduler characteristics"
    ~header:[ "Metric"; "Value" ]
    [
      [ "full run by batch size"; String.concat "; " sweep ];
      [ "full run by domains"; domain_summary ];
      [
        "cores (recommended_domain_count)";
        Printf.sprintf "%d (sweep rows beyond this are oversubscribed)" cores;
      ];
      [
        "gc per sequential run";
        Printf.sprintf "%.1fM minor words (%.0f/contract), %.1fM major"
          (gc_minor /. 1e6) gc_minor_per_contract (gc_major /. 1e6);
      ];
      [ "streamed scan peak RSS"; stream_summary ];
      [ "fault-injection sweep"; resilience_summary ];
      [
        "keccak selector memo";
        Printf.sprintf "%d hits / %d misses (%.1f%% hit rate)"
          memo.Keccak.Memo.hits memo.Keccak.Memo.misses (100.0 *. memo_rate);
      ];
      [
        "telemetry overhead (metrics)";
        Printf.sprintf "%.3fs vs %.3fs bare (%+.1f%%)" metrics_elapsed
          plain_elapsed
          ((metrics_overhead -. 1.0) *. 100.0);
      ];
      [
        "trace overhead (diagnostics)";
        Printf.sprintf "%.3fs vs %.3fs bare (%+.1f%%, %d trace events)"
          inst_elapsed plain_elapsed
          ((telemetry_overhead -. 1.0) *. 100.0)
          (Obs.Trace.count trace);
      ];
      [
        "stage latency p50/p90/p99 (us)";
        String.concat "; "
          (List.map
             (fun (name, s) ->
               Printf.sprintf "%s: %.0f/%.0f/%.0f" name
                 (1e6 *. s.Obs.Metrics.s_p50)
                 (1e6 *. s.Obs.Metrics.s_p90)
                 (1e6 *. s.Obs.Metrics.s_p99))
             stage_latency);
      ];
      [
        "run with event subscriber";
        Printf.sprintf "%.3fs (%d events delivered)" with_events !events;
      ];
      [
        "checkpoint (half-finished run)";
        Printf.sprintf "%.1f KiB in %.4fs" (float_of_int (String.length text) /. 1024.0)
          ck_elapsed;
      ];
      [
        "restore from checkpoint";
        Printf.sprintf "%s in %.4fs"
          (match restored with Ok _ -> "ok" | Error e -> "FAILED: " ^ e)
          restore_elapsed;
      ];
      [
        "journal recovery replay";
        (match journal_stats with
        | Error e -> "FAILED: " ^ e
        | Ok (bytes, committed, dropped, open_s, replay_s) ->
            Printf.sprintf
              "%.1f KiB journal, %d commits, %d torn B dropped; recover \
               %.4fs + replay %.4fs"
              (float_of_int bytes /. 1024.0)
              committed dropped open_s replay_s);
      ];
      [ "machine-readable artifact"; bench_engine_json_path ];
      [ "per-stage totals"; "" ];
    ];
  print_string (Proxion.Analyzer.stage_totals_table t)

(* ------------------------------------------------------------------ *)
(* Regeneration driver                                                  *)
(* ------------------------------------------------------------------ *)

let landscape = lazy (Experiments.Landscape.prepare ~config:bench_config ())

let section name f =
  Printf.printf "\n";
  f ();
  ignore name

let run_table1 () = print_string (Experiments.Table1.render (Experiments.Table1.run ()))
let run_table2 () = print_string (Experiments.Table2.render (Experiments.Table2.run ()))
let run_perf () = print_string (Experiments.Perf.render (Experiments.Perf.run ~config:bench_config ()))

let run_effectiveness () =
  print_string
    (Experiments.Effectiveness.render_sanctuary
       (Experiments.Effectiveness.run_sanctuary ~config:bench_config ()));
  print_newline ();
  print_string
    (Experiments.Effectiveness.render_crush
       (Experiments.Effectiveness.run_crush ~config:bench_config ()))

let run_fig2 () = print_string (Experiments.Landscape.fig2 (Lazy.force landscape))
let run_fig4 () = print_string (Experiments.Landscape.fig4 (Lazy.force landscape))
let run_table3 () = print_string (Experiments.Landscape.table3 (Lazy.force landscape))
let run_fig5 () = print_string (Experiments.Landscape.fig5 (Lazy.force landscape))
let run_table4 () = print_string (Experiments.Landscape.table4 (Lazy.force landscape))
let run_fig6 () = print_string (Experiments.Landscape.fig6 (Lazy.force landscape))
let run_summary () = print_string (Experiments.Landscape.summary (Lazy.force landscape))

let run_multichain () =
  print_string (Experiments.Multichain.render (Experiments.Multichain.run ~base_total:800 ()))

let run_all_landscape () =
  run_summary ();
  print_newline ();
  run_fig2 ();
  print_newline ();
  run_fig4 ();
  print_newline ();
  run_table3 ();
  print_newline ();
  run_fig5 ();
  print_newline ();
  run_table4 ();
  print_newline ();
  run_fig6 ();
  print_newline ();
  print_string (Experiments.Landscape.upgrade_authority (Lazy.force landscape))

let () =
  (* Subprocess mode: streamed-RSS probe child (see run_stream_child). *)
  match
    Option.bind (Sys.getenv_opt "BENCH_STREAM_TOTAL") int_of_string_opt
  with
  | Some total when total > 0 -> run_stream_child total
  | _ -> (
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match arg with
  | "micro" ->
      let fx = build_fixtures () in
      run_micro fx
  | "ablation" ->
      let fx = build_fixtures () in
      run_ablation fx
  | "engine" ->
      let fx = build_fixtures () in
      run_engine fx
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "table3" -> run_table3 ()
  | "table4" -> run_table4 ()
  | "fig2" -> run_fig2 ()
  | "fig4" -> run_fig4 ()
  | "fig5" -> run_fig5 ()
  | "fig6" -> run_fig6 ()
  | "perf" -> run_perf ()
  | "effectiveness" -> run_effectiveness ()
  | "landscape" -> run_all_landscape ()
  | "multichain" -> run_multichain ()
  | "all" ->
      print_endline "ProxioN benchmark & regeneration harness";
      print_endline "========================================";
      let fx = build_fixtures () in
      section "micro" (fun () -> run_micro fx);
      section "ablation" (fun () -> run_ablation fx);
      section "engine" (fun () -> run_engine fx);
      section "table1" run_table1;
      section "table2" run_table2;
      section "perf" run_perf;
      section "effectiveness" run_effectiveness;
      section "multichain" run_multichain;
      section "landscape" run_all_landscape
  | other ->
      Printf.eprintf
        "unknown section %s (try: micro ablation engine table1 table2 table3 \
         table4 fig2 fig4 fig5 fig6 perf effectiveness multichain landscape \
         all)\n"
        other;
      exit 1)
