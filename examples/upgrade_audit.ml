(* Upgrade audit — who can repoint your proxy?

   Salehi et al. (paper 9.1) ask who owns the upgradeability of each proxy.
   This example generates a small landscape (which deliberately contains a
   few proxies whose setLogic forgot the owner check), runs ProxioN's
   detection, and then fires the Upgrade_auth analysis at every detected
   proxy: an unprivileged probe account tries every dispatcher selector
   inside a snapshot and reports the proxies it could repoint.

   Run with: dune exec examples/upgrade_audit.exe [-- TOTAL] *)

let () =
  let total =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_500
  in
  let config =
    { Dataset.Generate.quick_config with Dataset.Generate.total; seed = 7 }
  in
  Printf.printf "generating a %d-contract landscape...\n%!" total;
  let land_ = Dataset.Generate.generate config in
  let chain = land_.Dataset.Generate.chain in
  (* Plant one deliberately mis-implemented proxy so the audit always has
     something to find (the generator also produces them at random). *)
  let planted_logic =
    Chain.install_contract chain
      ~runtime:(Minisol.Codegen.runtime (Minisol.Patterns.counter_logic ()))
      ()
  in
  let open_ast =
    Minisol.Ast.contract "CarelessProxy"
      ~vars:
        [
          { Minisol.Ast.v_name = "owner"; v_ty = Minisol.Ast.T_address };
          { Minisol.Ast.v_name = "logic"; v_ty = Minisol.Ast.T_address };
        ]
      ~funcs:
        [
          Minisol.Ast.func "setLogic"
            ~params:[ { Minisol.Ast.p_name = "l"; p_ty = Minisol.Ast.T_address } ]
            [ Minisol.Ast.Store ("logic", Minisol.Ast.Param 0) ];
        ]
      ~fallback:
        (Some [ Minisol.Ast.Delegate_forward (Minisol.Ast.To_var "logic") ])
  in
  let planted =
    Chain.install_contract chain ~runtime:(Minisol.Codegen.runtime open_ast) ()
  in
  Chain.set_storage_direct chain planted U256.one
    (Evm.Address.to_u256 planted_logic);
  let report =
    Proxion.Pipeline.analyze ~chain ~source:land_.Dataset.Generate.source_of ()
  in
  Printf.printf "detected %d proxies; auditing upgrade authority...\n\n%!"
    report.Proxion.Pipeline.stats.Proxion.Pipeline.s_proxies;
  let totals = Hashtbl.create 4 in
  let open_ones = ref [] in
  List.iter
    (fun r ->
      match r.Proxion.Pipeline.r_detection.Proxion.Proxy_detect.verdict with
      | Proxion.Proxy_detect.Proxy { source; _ } ->
          let auth =
            Proxion.Upgrade_auth.analyze chain r.Proxion.Pipeline.r_address source
          in
          let key = Proxion.Upgrade_auth.to_string auth in
          Hashtbl.replace totals key
            (1 + Option.value ~default:0 (Hashtbl.find_opt totals key));
          (match auth with
          | Proxion.Upgrade_auth.Open_to_anyone sel ->
              open_ones := (r.Proxion.Pipeline.r_address, sel) :: !open_ones
          | _ -> ())
      | _ -> ())
    report.Proxion.Pipeline.contracts;
  Report.print_table ~title:"Upgrade authority"
    ~header:[ "authority"; "# proxies" ]
    (Hashtbl.fold (fun k v acc -> [ k; string_of_int v ] :: acc) totals []
    |> List.sort compare);
  print_newline ();
  (match !open_ones with
  | [] -> print_endline "no open-to-anyone proxies in this landscape."
  | l ->
      Printf.printf "!! %d prox%s can be repointed by ANYONE:\n" (List.length l)
        (if List.length l = 1 then "y" else "ies");
      List.iter
        (fun (addr, sel) ->
          Printf.printf "  %s  via unprotected selector %s\n"
            (Evm.Address.to_hex addr) (Hexutil.to_hex sel);
          (* Show the offending source when it is "verified". *)
          match
            if Evm.Address.equal addr planted then Some open_ast
            else land_.Dataset.Generate.source_of addr
          with
          | Some ast ->
              print_newline ();
              print_string (Minisol.Pretty.contract ast)
          | None -> ())
        (List.filteri (fun i _ -> i < 2) l);
      print_newline ();
      print_endline
        "(one transaction each away from total takeover: point the logic at \
         an attacker contract and drain through the fallback)")
